// Storage substrate + server tests: container packing, dedup index,
// object stores, recipes/key-state records, the full server wire protocol,
// and client-side sharding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/storage_client.h"
#include "crypto/random.h"
#include "server/storage_server.h"
#include "store/container_store.h"
#include "store/index.h"
#include "store/recipe.h"

namespace reed {
namespace {

using crypto::DeterministicRng;

// --------------------------- container store ---------------------------

TEST(ContainerStoreTest, AppendReadRoundTrip) {
  store::ContainerStore cs(1024);
  DeterministicRng rng(1);
  std::vector<std::pair<store::ChunkLocation, Bytes>> stored;
  for (int i = 0; i < 20; ++i) {
    Bytes data = rng.Generate(100 + i * 10);
    stored.emplace_back(cs.Append(data), data);
  }
  for (const auto& [loc, data] : stored) {
    EXPECT_EQ(cs.Read(loc), data);
  }
}

TEST(ContainerStoreTest, OpensNewContainerWhenFull) {
  store::ContainerStore cs(1000);
  DiscardResult(cs.Append(Bytes(600, 1)));
  EXPECT_EQ(cs.stats().containers, 1u);
  DiscardResult(cs.Append(Bytes(600, 2)));  // doesn't fit; new container
  EXPECT_EQ(cs.stats().containers, 2u);
  // Oversized chunk still stored (own container).
  auto loc = cs.Append(Bytes(5000, 3));
  EXPECT_EQ(cs.Read(loc).size(), 5000u);
}

TEST(ContainerStoreTest, InvalidReadsThrow) {
  store::ContainerStore cs;
  auto loc = cs.Append(Bytes(10, 1));
  store::ChunkLocation bad = loc;
  bad.container_id = 99;
  EXPECT_THROW(cs.Read(bad), Error);
  bad = loc;
  bad.length = 1000;
  EXPECT_THROW(cs.Read(bad), Error);
  EXPECT_THROW(DiscardResult(cs.Append({})), Error);
}

// --------------------------- index / object store ---------------------------

TEST(FingerprintIndexTest, InsertLookup) {
  store::FingerprintIndex index;
  auto fp = chunk::Fingerprint::Of(ToBytes("chunk"));
  EXPECT_FALSE(index.Lookup(fp).has_value());
  EXPECT_TRUE(index.Insert(fp, {1, 2, 3}));
  EXPECT_FALSE(index.Insert(fp, {4, 5, 6}));  // duplicate rejected
  auto loc = index.Lookup(fp);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->container_id, 1u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(ObjectStoreTest, PutGetEraseAccounting) {
  store::ObjectStore os;
  os.Put("a", Bytes(100, 1));
  os.Put("b", Bytes(50, 2));
  EXPECT_EQ(os.total_bytes(), 150u);
  os.Put("a", Bytes(10, 3));  // overwrite shrinks accounting
  EXPECT_EQ(os.total_bytes(), 60u);
  EXPECT_EQ(os.Get("a"), Bytes(10, 3));
  EXPECT_TRUE(os.Contains("b"));
  EXPECT_TRUE(os.Erase("b"));
  EXPECT_FALSE(os.Erase("b"));
  EXPECT_EQ(os.total_bytes(), 10u);
  EXPECT_THROW(os.Get("missing"), Error);
}

TEST(ObjectStoreTest, PrefixAccounting) {
  store::ObjectStore os;
  os.Put("stub/f1", Bytes(100, 0));
  os.Put("stub/f2", Bytes(200, 0));
  os.Put("recipe/f1", Bytes(50, 0));
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 300u);
  EXPECT_EQ(os.TotalBytesWithPrefix("recipe/"), 50u);
  EXPECT_EQ(os.TotalBytesWithPrefix("nothing/"), 0u);
}

// The per-directory byte counters that replaced the O(n) scan must track
// overwrite (grow and shrink) and erase exactly, and must agree with scan
// semantics for non-directory prefixes.
TEST(ObjectStoreTest, PrefixAccountingSurvivesOverwriteAndErase) {
  store::ObjectStore os;
  os.Put("stub/f1", Bytes(100, 1));
  os.Put("stub/f2", Bytes(200, 2));
  os.Put("stub/f1", Bytes(700, 3));  // overwrite grows
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 900u);
  os.Put("stub/f2", Bytes(20, 4));   // overwrite shrinks
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 720u);
  EXPECT_TRUE(os.Erase("stub/f1"));
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 20u);
  EXPECT_FALSE(os.Erase("stub/f1"));  // double-erase changes nothing
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 20u);
  EXPECT_TRUE(os.Erase("stub/f2"));
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 0u);
  // The directory stays usable after draining to zero.
  os.Put("stub/f3", Bytes(5, 5));
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), 5u);

  // Generic prefixes (not exactly one trailing-slash segment) keep scan
  // semantics and must agree with the counters where both apply.
  os.Put("stub-index", Bytes(11, 6));
  os.Put("recipe/f1", Bytes(50, 7));
  EXPECT_EQ(os.TotalBytesWithPrefix("stub"), 16u);   // stub/f3 + stub-index
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/f3"), 5u);
  EXPECT_EQ(os.TotalBytesWithPrefix(""), 66u);       // everything
  EXPECT_EQ(os.total_bytes(), 66u);
}

// Many names across every shard: counters must equal a brute-force scan.
TEST(ObjectStoreTest, PrefixAccountingMatchesScanAcrossShards) {
  store::ObjectStore os;
  DeterministicRng rng(6);
  std::uint64_t stub_bytes = 0, recipe_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    std::size_t n = 1 + (i * 7) % 97;
    if (i % 2 == 0) {
      os.Put("stub/obj" + std::to_string(i), rng.Generate(n));
      stub_bytes += n;
    } else {
      os.Put("recipe/obj" + std::to_string(i), rng.Generate(n));
      recipe_bytes += n;
    }
  }
  // Overwrite a third of them, erase a few.
  for (int i = 0; i < 200; i += 3) {
    std::string name =
        (i % 2 == 0 ? "stub/obj" : "recipe/obj") + std::to_string(i);
    std::uint64_t old = os.Get(name).size();
    os.Put(name, rng.Generate(40));
    (i % 2 == 0 ? stub_bytes : recipe_bytes) += 40 - old;
  }
  for (int i = 0; i < 200; i += 17) {
    std::string name =
        (i % 2 == 0 ? "stub/obj" : "recipe/obj") + std::to_string(i);
    std::uint64_t old = os.Get(name).size();
    EXPECT_TRUE(os.Erase(name));
    (i % 2 == 0 ? stub_bytes : recipe_bytes) -= old;
  }
  EXPECT_EQ(os.TotalBytesWithPrefix("stub/"), stub_bytes);
  EXPECT_EQ(os.TotalBytesWithPrefix("recipe/"), recipe_bytes);
  EXPECT_EQ(os.total_bytes(), stub_bytes + recipe_bytes);
}

// --------------------------- recipes ---------------------------

TEST(RecipeTest, SerializationRoundTrip) {
  store::FileRecipe recipe;
  recipe.file_id = "backup-day-1";
  recipe.file_size = 123456;
  recipe.scheme = 1;
  recipe.stub_size = 64;
  for (int i = 0; i < 5; ++i) {
    recipe.fingerprints.push_back(
        chunk::Fingerprint::Of(ToBytes("chunk" + std::to_string(i))));
    recipe.chunk_sizes.push_back(1000 + i);
  }
  Bytes blob = recipe.Serialize();
  store::FileRecipe back = store::FileRecipe::Deserialize(blob);
  EXPECT_EQ(back.file_id, recipe.file_id);
  EXPECT_EQ(back.file_size, recipe.file_size);
  EXPECT_EQ(back.scheme, recipe.scheme);
  EXPECT_EQ(back.stub_size, recipe.stub_size);
  EXPECT_EQ(back.fingerprints, recipe.fingerprints);
  EXPECT_EQ(back.chunk_sizes, recipe.chunk_sizes);
  blob.pop_back();
  EXPECT_THROW(store::FileRecipe::Deserialize(blob), Error);
}

TEST(RecipeTest, KeyStateRecordRoundTrip) {
  store::KeyStateRecord rec;
  rec.owner_id = "alice";
  rec.key_version = 7;
  rec.stub_key_version = 5;
  rec.policy = ToBytes("policy-bytes");
  rec.wrapped_state = ToBytes("abe-ciphertext");
  rec.group_wrap_id = "groupwrap/abc123";
  rec.derivation_public_key = ToBytes("rsa-pub");
  store::KeyStateRecord back = store::KeyStateRecord::Deserialize(rec.Serialize());
  EXPECT_EQ(back.owner_id, "alice");
  EXPECT_EQ(back.key_version, 7u);
  EXPECT_EQ(back.stub_key_version, 5u);
  EXPECT_EQ(back.policy, rec.policy);
  EXPECT_EQ(back.wrapped_state, rec.wrapped_state);
  EXPECT_EQ(back.group_wrap_id, rec.group_wrap_id);
  EXPECT_EQ(back.derivation_public_key, rec.derivation_public_key);
}

TEST(RecipeTest, ObfuscatedFileIds) {
  Bytes salt1 = ToBytes("salt-1"), salt2 = ToBytes("salt-2");
  std::string a = store::ObfuscateFileId("/home/alice/doc.txt", salt1);
  EXPECT_EQ(a, store::ObfuscateFileId("/home/alice/doc.txt", salt1));
  EXPECT_NE(a, store::ObfuscateFileId("/home/alice/doc.txt", salt2));
  EXPECT_NE(a, store::ObfuscateFileId("/home/alice/other.txt", salt1));
  EXPECT_EQ(a.size(), 64u);  // hex SHA-256
}

// --------------------------- storage server ---------------------------

TEST(StorageServerTest, DeduplicatesIdenticalChunks) {
  server::StorageServer srv;
  DeterministicRng rng(2);
  Bytes data = rng.Generate(1000);
  auto fp = chunk::Fingerprint::Of(data);

  auto r1 = srv.PutChunks({{fp, data}});
  EXPECT_EQ(r1.stored, 1u);
  EXPECT_EQ(r1.duplicates, 0u);
  auto r2 = srv.PutChunks({{fp, data}, {fp, data}});
  EXPECT_EQ(r2.stored, 0u);
  EXPECT_EQ(r2.duplicates, 2u);

  auto stats = srv.stats();
  EXPECT_EQ(stats.logical_chunks, 3u);
  EXPECT_EQ(stats.unique_chunks, 1u);
  EXPECT_EQ(stats.physical_bytes, 1000u);
  EXPECT_EQ(stats.logical_bytes, 3000u);
  EXPECT_EQ(srv.GetChunks({fp})[0], data);
}

// Regression: PutChunks used to drop FingerprintIndex::Insert's return
// value, so a lost lookup→append→insert race would silently orphan the
// appended copy. The compound step is now serialized under the ingest lock
// and a rejected insert throws. Hammer the same chunk from many threads:
// every call must succeed, and exactly one physical copy may exist.
TEST(StorageServerTest, ConcurrentIdenticalPutsStoreExactlyOneCopy) {
  server::StorageServer srv;
  DeterministicRng rng(3);
  Bytes data = rng.Generate(512);
  auto fp = chunk::Fingerprint::Of(data);

  constexpr int kThreads = 8;
  constexpr int kPutsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> stored{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPutsPerThread; ++i) {
        auto r = srv.PutChunks({{fp, data}});
        stored += r.stored;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(stored.load(), 1u);
  auto stats = srv.stats();
  EXPECT_EQ(stats.logical_chunks,
            static_cast<std::uint64_t>(kThreads) * kPutsPerThread);
  EXPECT_EQ(stats.unique_chunks, 1u);
  EXPECT_EQ(stats.physical_bytes, data.size());
  EXPECT_EQ(srv.GetChunks({fp})[0], data);
}

TEST(StorageServerTest, GetUnknownChunkThrows) {
  server::StorageServer srv;
  EXPECT_THROW(srv.GetChunks({chunk::Fingerprint::Of(ToBytes("nope"))}), Error);
}

TEST(StorageServerTest, ObjectStoresAreSeparate) {
  server::StorageServer srv;
  srv.PutObject(server::StoreId::kData, "x", ToBytes("data-store"));
  srv.PutObject(server::StoreId::kKey, "x", ToBytes("key-store"));
  EXPECT_EQ(srv.GetObject(server::StoreId::kData, "x"), ToBytes("data-store"));
  EXPECT_EQ(srv.GetObject(server::StoreId::kKey, "x"), ToBytes("key-store"));
  EXPECT_TRUE(srv.HasObject(server::StoreId::kData, "x"));
  EXPECT_FALSE(srv.HasObject(server::StoreId::kData, "y"));
}

TEST(StorageServerTest, WireProtocolRoundTrip) {
  server::StorageServer srv;
  DeterministicRng rng(3);
  Bytes data = rng.Generate(500);
  auto fp = chunk::Fingerprint::Of(data);

  // PutChunks via the wire.
  net::Writer put;
  put.U8(static_cast<std::uint8_t>(server::Opcode::kPutChunks));
  put.U32(1);
  put.Raw(fp.AsSpan());
  put.Blob(data);
  Bytes put_resp = srv.HandleRequest(put.Take());
  net::Reader pr(put_resp);
  EXPECT_EQ(pr.U8(), 0);
  EXPECT_EQ(pr.U32(), 0u);  // duplicates
  EXPECT_EQ(pr.U32(), 1u);  // stored

  // GetChunks via the wire.
  net::Writer get;
  get.U8(static_cast<std::uint8_t>(server::Opcode::kGetChunks));
  get.U32(1);
  get.Raw(fp.AsSpan());
  Bytes get_resp = srv.HandleRequest(get.Take());
  net::Reader gr(get_resp);
  EXPECT_EQ(gr.U8(), 0);
  EXPECT_EQ(gr.Blob(), data);
}

TEST(StorageServerTest, WireProtocolErrorsAreStatusFrames) {
  server::StorageServer srv;
  // Garbage request.
  Bytes garbage = {0xFF, 0x00};
  Bytes garbage_resp = srv.HandleRequest(garbage);
  net::Reader r(garbage_resp);
  EXPECT_EQ(r.U8(), 1);
  // Unknown object.
  net::Writer get;
  get.U8(static_cast<std::uint8_t>(server::Opcode::kGetObject));
  get.U8(0);
  get.Str("missing");
  Bytes get_resp = srv.HandleRequest(get.Take());
  net::Reader r2(get_resp);
  EXPECT_EQ(r2.U8(), 1);
  EXPECT_NE(r2.Str().find("missing"), std::string::npos);
}

// --------------------------- storage client (sharding) ---------------------------

class ShardedClusterTest : public ::testing::Test {
 protected:
  ShardedClusterTest() {
    for (int i = 0; i < 4; ++i) {
      servers_.push_back(std::make_unique<server::StorageServer>(
          "s" + std::to_string(i)));
    }
    key_server_ = std::make_unique<server::StorageServer>("key");
    std::vector<std::shared_ptr<net::RpcChannel>> channels;
    for (auto& s : servers_) {
      server::StorageServer* raw = s.get();
      channels.push_back(std::make_shared<net::LocalChannel>(
          [raw](ByteSpan req) { return raw->HandleRequest(req); }));
    }
    server::StorageServer* kraw = key_server_.get();
    client_ = std::make_unique<client::StorageClient>(
        std::move(channels),
        std::make_shared<net::LocalChannel>(
            [kraw](ByteSpan req) { return kraw->HandleRequest(req); }));
  }

  std::vector<std::unique_ptr<server::StorageServer>> servers_;
  std::unique_ptr<server::StorageServer> key_server_;
  std::unique_ptr<client::StorageClient> client_;
};

TEST_F(ShardedClusterTest, ChunksSpreadAcrossServersAndRoundTrip) {
  DeterministicRng rng(4);
  std::vector<std::pair<chunk::Fingerprint, Bytes>> chunks;
  std::vector<chunk::Fingerprint> fps;
  for (int i = 0; i < 100; ++i) {
    Bytes data = rng.Generate(200);
    auto fp = chunk::Fingerprint::Of(data);
    chunks.emplace_back(fp, data);
    fps.push_back(fp);
  }
  auto stats = client_->PutChunks(chunks);
  EXPECT_EQ(stats.stored, 100u);

  // All four servers should have received some chunks.
  for (auto& s : servers_) {
    EXPECT_GT(s->stats().unique_chunks, 0u) << s->name();
  }

  // Order-preserving gather.
  std::vector<Bytes> fetched = client_->GetChunks(fps);
  ASSERT_EQ(fetched.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fetched[i], chunks[i].second);
}

TEST_F(ShardedClusterTest, DedupAcrossUploadsOnSameShard) {
  DeterministicRng rng(5);
  Bytes data = rng.Generate(300);
  auto fp = chunk::Fingerprint::Of(data);
  (void)client_->PutChunks({{fp, data}});
  auto stats = client_->PutChunks({{fp, data}});
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.stored, 0u);
}

TEST_F(ShardedClusterTest, KeyObjectsGoToKeyServer) {
  client_->PutObject(server::StoreId::kKey, "keystate/f", ToBytes("wrapped"));
  EXPECT_TRUE(key_server_->HasObject(server::StoreId::kKey, "keystate/f"));
  for (auto& s : servers_) {
    EXPECT_FALSE(s->HasObject(server::StoreId::kKey, "keystate/f"));
  }
  EXPECT_EQ(client_->GetObject(server::StoreId::kKey, "keystate/f"),
            ToBytes("wrapped"));
}

TEST_F(ShardedClusterTest, DataObjectsShardByName) {
  for (int i = 0; i < 20; ++i) {
    std::string name = "recipe/file-" + std::to_string(i);
    client_->PutObject(server::StoreId::kData, name, ToBytes("recipe"));
    EXPECT_TRUE(client_->HasObject(server::StoreId::kData, name));
  }
  std::size_t with_objects = 0;
  for (auto& s : servers_) {
    if (s->stats().data_object_bytes > 0) ++with_objects;
  }
  EXPECT_GE(with_objects, 2u);  // spread over multiple servers
}

}  // namespace
}  // namespace reed
