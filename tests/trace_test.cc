// Trace substrate tests: determinism, churn/growth/sharing structure of the
// synthetic FSL-style backup trace, chunk reconstruction, serialization.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/trace.h"

namespace reed::trace {
namespace {

TraceOptions SmallOptions() {
  TraceOptions opts;
  opts.num_users = 3;
  opts.num_days = 10;
  opts.user_snapshot_bytes = 1 << 20;  // 1 MB
  opts.seed = 99;
  return opts;
}

TEST(TraceTest, SnapshotsAreDeterministic) {
  TraceGenerator g1(SmallOptions());
  TraceGenerator g2(SmallOptions());
  for (std::size_t day = 0; day < 3; ++day) {
    Snapshot a = g1.GetSnapshot(0, day);
    Snapshot b = g2.GetSnapshot(0, day);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].fingerprint48, b[i].fingerprint48);
      EXPECT_EQ(a[i].size, b[i].size);
    }
  }
}

TEST(TraceTest, SnapshotSizeNearTarget) {
  TraceGenerator gen(SmallOptions());
  Snapshot snap = gen.GetSnapshot(0, 0);
  std::uint64_t bytes = SnapshotBytes(snap);
  EXPECT_GE(bytes, SmallOptions().user_snapshot_bytes);
  EXPECT_LT(bytes, SmallOptions().user_snapshot_bytes + 64 * 1024);
  for (const auto& rec : snap) {
    EXPECT_GE(rec.size, SmallOptions().min_chunk);
    EXPECT_LE(rec.size, SmallOptions().max_chunk);
    EXPECT_LT(rec.fingerprint48, std::uint64_t(1) << 48);
  }
}

TEST(TraceTest, DayOverDayChurnMatchesModificationRate) {
  TraceOptions opts = SmallOptions();
  opts.daily_mod_rate = 0.05;
  opts.daily_growth_rate = 0.0;
  TraceGenerator gen(opts);
  Snapshot d0 = gen.GetSnapshot(0, 0);
  Snapshot d1 = gen.GetSnapshot(0, 1);
  ASSERT_EQ(d0.size(), d1.size());  // no growth
  std::size_t changed = 0;
  for (std::size_t i = 0; i < d0.size(); ++i) {
    if (d0[i].fingerprint48 != d1[i].fingerprint48) ++changed;
  }
  double rate = static_cast<double>(changed) / static_cast<double>(d0.size());
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.15);  // ~5% expected
}

TEST(TraceTest, WorkingSetGrowsDaily) {
  TraceOptions opts = SmallOptions();
  opts.daily_growth_rate = 0.05;
  TraceGenerator gen(opts);
  std::uint64_t b0 = SnapshotBytes(gen.GetSnapshot(0, 0));
  std::uint64_t b5 = SnapshotBytes(gen.GetSnapshot(0, 5));
  EXPECT_GT(b5, b0 + 4 * (opts.user_snapshot_bytes / 25));  // ~5%/day
}

TEST(TraceTest, CrossUserSharingProducesCommonChunks) {
  TraceOptions opts = SmallOptions();
  opts.cross_user_share = 0.5;
  TraceGenerator gen(opts);
  Snapshot u0 = gen.GetSnapshot(0, 0);
  Snapshot u1 = gen.GetSnapshot(1, 0);
  std::unordered_set<std::uint64_t> set0;
  for (const auto& r : u0) set0.insert(r.fingerprint48);
  std::size_t shared = 0;
  for (const auto& r : u1) {
    if (set0.contains(r.fingerprint48)) ++shared;
  }
  double frac = static_cast<double>(shared) / static_cast<double>(u1.size());
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST(TraceTest, ZeroSharingMeansDisjointUsers) {
  TraceOptions opts = SmallOptions();
  opts.cross_user_share = 0.0;
  TraceGenerator gen(opts);
  Snapshot u0 = gen.GetSnapshot(0, 0);
  Snapshot u1 = gen.GetSnapshot(1, 0);
  std::unordered_set<std::uint64_t> set0;
  for (const auto& r : u0) set0.insert(r.fingerprint48);
  for (const auto& r : u1) EXPECT_FALSE(set0.contains(r.fingerprint48));
}

TEST(TraceTest, OutOfOrderDayRequestsRejected) {
  TraceGenerator gen(SmallOptions());
  (void)gen.GetSnapshot(0, 5);
  EXPECT_THROW(gen.GetSnapshot(0, 2), Error);
  // Re-requesting the current day is fine.
  EXPECT_NO_THROW(gen.GetSnapshot(0, 5));
  EXPECT_THROW(gen.GetSnapshot(9, 0), Error);   // bad user
  EXPECT_THROW(gen.GetSnapshot(0, 100), Error); // bad day
}

TEST(TraceTest, ReconstructChunkRepeatsFingerprint) {
  ChunkRecord rec{0x0102030405E6ull, 14};
  Bytes chunk = ReconstructChunk(rec);
  ASSERT_EQ(chunk.size(), 14u);
  Bytes expect = {0x01, 0x02, 0x03, 0x04, 0x05, 0xE6,
                  0x01, 0x02, 0x03, 0x04, 0x05, 0xE6, 0x01, 0x02};
  EXPECT_EQ(chunk, expect);
  // Identical records reconstruct identical chunks; distinct differ.
  EXPECT_EQ(ReconstructChunk(rec), chunk);
  ChunkRecord other{0x0102030405E7ull, 14};
  EXPECT_NE(ReconstructChunk(other), chunk);
  EXPECT_THROW(ReconstructChunk(ChunkRecord{1, 0}), Error);
}

TEST(TraceTest, MaterializeSnapshotIsConsistent) {
  TraceGenerator gen(SmallOptions());
  Snapshot snap = gen.GetSnapshot(0, 0);
  MaterializedSnapshot mat = MaterializeSnapshot(snap);
  EXPECT_EQ(mat.data.size(), SnapshotBytes(snap));
  ASSERT_EQ(mat.refs.size(), snap.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(mat.refs[i].offset, off);
    EXPECT_EQ(mat.refs[i].length, snap[i].size);
    off += snap[i].size;
  }
}

TEST(TraceTest, SnapshotSerializationRoundTrip) {
  TraceGenerator gen(SmallOptions());
  Snapshot snap = gen.GetSnapshot(1, 0);
  Bytes blob = SerializeSnapshot(snap);
  EXPECT_EQ(blob.size(), snap.size() * 10);
  Snapshot back = DeserializeSnapshot(blob);
  ASSERT_EQ(back.size(), snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(back[i].fingerprint48, snap[i].fingerprint48);
    EXPECT_EQ(back[i].size, snap[i].size);
  }
  blob.pop_back();
  EXPECT_THROW(DeserializeSnapshot(blob), Error);
}

TEST(TraceTest, HighDedupAcrossConsecutiveDays) {
  // The property Fig. 9/10 depend on: consecutive snapshots share almost
  // all chunks (real backups have ~98%+ inter-snapshot redundancy).
  TraceOptions opts = SmallOptions();
  opts.daily_mod_rate = 0.01;
  opts.daily_growth_rate = 0.002;
  TraceGenerator gen(opts);
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t logical = 0, unique_bytes = 0;
  for (std::size_t day = 0; day < 10; ++day) {
    Snapshot snap = gen.GetSnapshot(0, day);
    for (const auto& rec : snap) {
      logical += rec.size;
      if (seen.insert(rec.fingerprint48).second) unique_bytes += rec.size;
    }
  }
  double saving =
      1.0 - static_cast<double>(unique_bytes) / static_cast<double>(logical);
  EXPECT_GT(saving, 0.80);  // ten days of 1%-churn backups
}

TEST(TraceTest, InvalidOptionsRejected) {
  TraceOptions opts = SmallOptions();
  opts.num_users = 0;
  EXPECT_THROW(TraceGenerator g(opts), Error);
  opts = SmallOptions();
  opts.avg_chunk = 1;  // below min
  EXPECT_THROW(TraceGenerator g2(opts), Error);
}

}  // namespace
}  // namespace reed::trace
