// Tests for the util module: byte helpers, LRU cache, token bucket,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "util/bytes.h"
#include "util/lru_cache.h"
#include "util/rate_limiter.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace reed {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abcdefff");
  EXPECT_EQ(HexDecode("0001abcdefff"), data);
  EXPECT_EQ(HexDecode("0001ABCDEFFF"), data);  // uppercase accepted
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_THROW(HexDecode("abc"), Error);   // odd length
  EXPECT_THROW(HexDecode("zz"), Error);    // non-hex
  EXPECT_EQ(HexDecode(""), Bytes{});
}

TEST(BytesTest, XorIntoAndSizeMismatch) {
  Bytes a = {0xFF, 0x0F, 0x00};
  Bytes b = {0x0F, 0x0F, 0x0F};
  XorInto(a, b);
  EXPECT_EQ(a, (Bytes{0xF0, 0x00, 0x0F}));
  Bytes c = {0x01};
  EXPECT_THROW(XorInto(a, c), Error);
}

TEST(BytesTest, ConcatAndSlice) {
  Bytes a = ToBytes("hello");
  Bytes b = ToBytes(" ");
  Bytes c = ToBytes("world");
  Bytes all = Concat(a, b, c);
  EXPECT_EQ(ToString(all), "hello world");
  EXPECT_EQ(ToString(Slice(all, 6, 5)), "world");
  EXPECT_THROW(Slice(all, 7, 5), Error);
  EXPECT_THROW(Slice(all, 0, 100), Error);
}

TEST(BytesTest, BigEndianCodecs) {
  Bytes buf(12);
  PutU32(MutableByteSpan(buf.data(), 4), 0xDEADBEEF);
  PutU64(MutableByteSpan(buf.data() + 4, 8), 0x0123456789ABCDEFULL);
  EXPECT_EQ(GetU32(ByteSpan(buf.data(), 4)), 0xDEADBEEFu);
  EXPECT_EQ(GetU64(ByteSpan(buf.data() + 4, 8)), 0x0123456789ABCDEFULL);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = ToBytes("secret");
  Bytes b = ToBytes("secret");
  Bytes c = ToBytes("secreT");
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ToBytes("secre")));
}

TEST(BytesTest, SecureWipeZeroes) {
  Bytes secret = ToBytes("sensitive key material");
  SecureWipe(secret);
  for (std::uint8_t b : secret) EXPECT_EQ(b, 0);
}

TEST(LruCacheTest, BasicPutGet) {
  LruCache<std::string, int> cache(1000, 10);
  cache.Put("a", 1);
  cache.Put("b", 2);
  EXPECT_EQ(cache.Get("a").value_or(-1), 1);
  EXPECT_EQ(cache.Get("b").value_or(-1), 2);
  EXPECT_FALSE(cache.Get("c").has_value());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(30, 10);  // room for 3 entries
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);
  EXPECT_TRUE(cache.Get("a").has_value());  // refresh "a"
  cache.Put("d", 4);                        // evicts "b"
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
}

TEST(LruCacheTest, UpdateExistingKeyDoesNotGrow) {
  LruCache<std::string, int> cache(20, 10);
  cache.Put("a", 1);
  cache.Put("a", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a").value_or(-1), 2);
  EXPECT_EQ(cache.used_bytes(), 10u);
}

TEST(LruCacheTest, StatsTrackHitsMissesEvictions) {
  LruCache<int, int> cache(20, 10);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);  // evicts 1
  (void)cache.Get(2);
  (void)cache.Get(1);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(LruCacheTest, ClearEmptiesCache) {
  LruCache<int, int> cache(100, 10);
  cache.Put(1, 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(TokenBucketTest, StartsFullAndDrains) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.1));   // 1 token refilled
  EXPECT_FALSE(bucket.TryAcquire(0.1));
  EXPECT_TRUE(bucket.TryAcquire(0.5));
}

TEST(TokenBucketTest, BurstIsCapped) {
  TokenBucket bucket(10.0, 5.0);
  // After a long idle period only `burst` tokens are available.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_FALSE(bucket.TryAcquire(100.0));
}

TEST(TokenBucketTest, DelayUntilAvailable) {
  TokenBucket bucket(2.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  double delay = bucket.DelayUntilAvailable(0.0);
  EXPECT_NEAR(delay, 0.5, 1e-6);
  EXPECT_EQ(bucket.DelayUntilAvailable(1.0), 0.0);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

// The reason Submit is [[nodiscard]]: the returned future is the ONLY
// channel for a task's exception. Dropping it swallows the error.
TEST(ThreadPoolTest, SubmitFutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw Error("task failed"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [](std::size_t i) {
                         if (i == 7) throw Error("boom");
                       }),
      Error);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_EQ(MbPerSec(1024 * 1024, 1.0), 1.0);
  EXPECT_EQ(MbPerSec(1024 * 1024, 0.0), 0.0);
}

}  // namespace
}  // namespace reed
