// Table-driven wire-format robustness test: every RPC message type must
// (a) round-trip through its encoder/decoder, (b) reject EVERY strict
// prefix (truncation mid-field or mid-list), and (c) reject a trailing
// byte — the decoders end with Reader::ExpectEnd, so a frame that parses
// but does not consume its whole payload is a protocol bug, not slack.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "chunk/fingerprint.h"
#include "crypto/random.h"
#include "keymanager/key_manager.h"
#include "net/stats_wire.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "server/storage_server.h"
#include "store/recipe.h"

namespace reed {
namespace {

using bigint::BigInt;
using crypto::DeterministicRng;
using keymanager::KeyManager;

// One message type under test. `decode` returns true when the frame is
// accepted (fully parsed, ExpectEnd passed); decode failures — thrown
// Error or an error-status response frame — return false.
struct WireCase {
  std::string name;
  Bytes encoded;
  std::function<bool(ByteSpan)> decode;
};

bool Parses(const std::function<void(ByteSpan)>& parse, ByteSpan frame) {
  try {
    parse(frame);
    return true;
  } catch (const Error&) {
    return false;
  }
}

store::FileRecipe SampleRecipe() {
  store::FileRecipe recipe;
  recipe.file_id = "obfuscated-file-id";
  recipe.file_size = 12345;
  recipe.scheme = 2;
  recipe.stub_size = 64;
  DeterministicRng rng(11);
  recipe.fingerprints.push_back(chunk::Fingerprint::Of(rng.Generate(100)));
  recipe.fingerprints.push_back(chunk::Fingerprint::Of(rng.Generate(100)));
  recipe.chunk_sizes = {4096, 8249};
  return recipe;
}

store::KeyStateRecord SampleKeyState() {
  store::KeyStateRecord rec;
  rec.owner_id = "alice";
  rec.key_version = 3;
  rec.stub_key_version = 2;
  rec.policy = ToBytes("policy-bytes");
  rec.wrapped_state = ToBytes("cp-abe-ciphertext");
  rec.group_wrap_id = "group-7";
  rec.derivation_public_key = ToBytes("n-and-e");
  return rec;
}

class WireRoundTripTest : public ::testing::Test {
 protected:
  // 512-bit keys keep the key-manager cases fast; the wire format is
  // identical at every modulus size.
  WireRoundTripTest()
      : rng_(42),
        km_(rsa::GenerateKeyPair(512, rng_),
            KeyManager::Options{}),
        nbytes_(km_.public_key().ByteLength()) {
    // Seed server state so the Get/Has opcodes exercise their success
    // paths: decode failures must come from framing, not missing data.
    DeterministicRng chunk_rng(7);
    chunk_data_ = chunk_rng.Generate(128);
    fp_ = chunk::Fingerprint::Of(chunk_data_);
    (void)server_.PutChunks({{fp_, chunk_data_}});
    server_.PutObject(server::StoreId::kData, "recipe/f1",
                      ToBytes("stored-object"));
  }

  // Storage-server frames answer with status byte 0 on success, 1 on any
  // parse or execution error.
  std::function<bool(ByteSpan)> ServerDecode() {
    return [this](ByteSpan frame) {
      Bytes resp = server_.HandleRequest(frame);
      return !resp.empty() && resp[0] == 0;
    };
  }

  std::vector<WireCase> MakeCases() {
    std::vector<WireCase> cases;

    cases.push_back({"FileRecipe", SampleRecipe().Serialize(),
                     [](ByteSpan f) {
                       return Parses([](ByteSpan b) {
                         store::FileRecipe r = store::FileRecipe::Deserialize(b);
                         if (r.chunk_count() != 2) throw Error("bad roundtrip");
                       }, f);
                     }});

    cases.push_back({"KeyStateRecord", SampleKeyState().Serialize(),
                     [](ByteSpan f) {
                       return Parses([](ByteSpan b) {
                         store::KeyStateRecord r =
                             store::KeyStateRecord::Deserialize(b);
                         if (r.owner_id != "alice") throw Error("bad roundtrip");
                       }, f);
                     }});

    // Key-manager request: parsed by HandleRequest, which answers status 2
    // (malformed) for framing errors — accepted means status byte 0.
    std::vector<BigInt> blinded = {BigInt::FromHex("3039"),
                                   BigInt::FromHex("10932")};
    cases.push_back({"KeyManagerRequest",
                     KeyManager::EncodeRequest("client-1", blinded, nbytes_),
                     [this](ByteSpan f) {
                       Bytes resp = km_.HandleRequest(f);
                       return !resp.empty() && resp[0] == 0;
                     }});

    // Key-manager response: status byte + expected_count padded signatures.
    {
      net::Writer w;
      w.U8(0);
      DeterministicRng sig_rng(5);
      w.Raw(sig_rng.Generate(nbytes_));
      w.Raw(sig_rng.Generate(nbytes_));
      std::size_t nbytes = nbytes_;
      cases.push_back({"KeyManagerResponse", w.Take(),
                       [nbytes](ByteSpan f) {
                         return Parses([nbytes](ByteSpan b) {
                           (void)KeyManager::DecodeResponse(b, nbytes, 2);
                         }, f);
                       }});
    }

    // Storage-server opcode frames.
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kPutChunks));
      w.U32(1);
      w.Raw(fp_.AsSpan());
      w.Blob(chunk_data_);
      cases.push_back({"PutChunks", w.Take(), ServerDecode()});
    }
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kGetChunks));
      w.U32(1);
      w.Raw(fp_.AsSpan());
      cases.push_back({"GetChunks", w.Take(), ServerDecode()});
    }
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kPutObject));
      w.U8(static_cast<std::uint8_t>(server::StoreId::kKey));
      w.Str("keystate/f1");
      w.Blob(ToBytes("wrapped"));
      cases.push_back({"PutObject", w.Take(), ServerDecode()});
    }
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kGetObject));
      w.U8(static_cast<std::uint8_t>(server::StoreId::kData));
      w.Str("recipe/f1");
      cases.push_back({"GetObject", w.Take(), ServerDecode()});
    }
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kHasObject));
      w.U8(static_cast<std::uint8_t>(server::StoreId::kData));
      w.Str("recipe/f1");
      cases.push_back({"HasObject", w.Take(), ServerDecode()});
    }
    {
      net::Writer w;
      w.U8(static_cast<std::uint8_t>(server::Opcode::kGetStats));
      cases.push_back({"GetStats", w.Take(), ServerDecode()});
    }

    // kGetStats response payload: a populated snapshot (counter + negative
    // gauge + histogram) must survive the same truncation discipline as
    // every request frame.
    {
      obs::Snapshot snap;
      snap.counters.push_back({"server.rpc.put_chunks.calls", 17});
      snap.gauges.push_back({"server.store.logical_bytes", -3});
      obs::Snapshot::HistogramValue h;
      h.name = "server.rpc.put_chunks.latency_us";
      h.count = 2;
      h.sum = 300;
      h.buckets.assign(obs::Histogram::kNumBuckets, 0);
      h.buckets[8] = 2;
      snap.histograms.push_back(std::move(h));
      net::Writer w;
      net::EncodeSnapshot(w, snap);
      cases.push_back({"StatsSnapshot", w.Take(),
                       [](ByteSpan f) {
                         return Parses([](ByteSpan b) {
                           net::Reader r(b);
                           obs::Snapshot s = net::DecodeSnapshot(r);
                           r.ExpectEnd();
                           if (s.counters.size() != 1 ||
                               s.counters[0].value != 17 ||
                               s.gauges.size() != 1 ||
                               s.gauges[0].value != -3 ||
                               s.histograms.size() != 1 ||
                               s.histograms[0].sum != 300) {
                             throw Error("bad roundtrip");
                           }
                         }, f);
                       }});
    }

    return cases;
  }

  crypto::DeterministicRng rng_;
  keymanager::KeyManager km_;
  std::size_t nbytes_;
  server::StorageServer server_;
  Bytes chunk_data_;
  chunk::Fingerprint fp_;
};

TEST_F(WireRoundTripTest, IntactFramesDecode) {
  for (const WireCase& c : MakeCases()) {
    EXPECT_TRUE(c.decode(c.encoded)) << c.name;
  }
}

TEST_F(WireRoundTripTest, EveryTruncationRejected) {
  for (const WireCase& c : MakeCases()) {
    ASSERT_FALSE(c.encoded.empty()) << c.name;
    for (std::size_t len = 0; len < c.encoded.size(); ++len) {
      ByteSpan prefix(c.encoded.data(), len);
      EXPECT_FALSE(c.decode(prefix))
          << c.name << " accepted a truncation at byte " << len << "/"
          << c.encoded.size();
    }
  }
}

TEST_F(WireRoundTripTest, TrailingByteRejected) {
  for (const WireCase& c : MakeCases()) {
    Bytes padded = c.encoded;
    padded.push_back(0x00);
    EXPECT_FALSE(c.decode(padded)) << c.name << " accepted a trailing byte";
  }
}

// Regression: a forged length prefix claiming a multi-gigabyte blob must
// fail on the Reader's sanity cap BEFORE any allocation sized by the claim
// — previously only the remaining-buffer check applied, so a claim just
// under the transport's frame limit drove a giant allocation attempt.
TEST(WireBlobCapTest, ForgedHugeLengthRejectedByDefaultCap) {
  net::Writer w;
  w.U32(net::Reader::kDefaultMaxBlobLen + 1);  // claim: 256 MiB + 1
  w.Raw(ToBytes("tiny actual body"));
  Bytes frame = w.Take();
  net::Reader r(frame);
  try {
    (void)r.Blob();
    FAIL() << "a blob claim over the sanity cap parsed";
  } catch (const net::WireError& e) {
    // The cap must fire on the CLAIM, not on buffer truncation.
    EXPECT_NE(std::string(e.what()).find("sanity cap"), std::string::npos)
        << e.what();
  }
}

TEST(WireBlobCapTest, CustomCapBitesEvenWhenBodyIsPresent) {
  // With the whole declared body present the old truncation check passes,
  // so only the cap can reject — proving the two checks are independent.
  Bytes body(32, 0xab);
  net::Writer w;
  w.Blob(body);
  Bytes frame = w.Take();
  net::Reader strict(frame, /*max_blob_len=*/16);
  EXPECT_THROW((void)strict.Blob(), net::WireError);
  net::Reader relaxed(frame, /*max_blob_len=*/32);
  EXPECT_EQ(relaxed.Blob(), body);
  relaxed.ExpectEnd();
}

}  // namespace
}  // namespace reed
