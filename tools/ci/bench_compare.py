#!/usr/bin/env python3
"""Compare bench_fig* --json output against a checked-in baseline.

The bench binaries emit one JSON document per run:

    {"bench": "fig5_keygen", "scale": "smoke",
     "series": {"speed_vs_chunk": [{"chunk_size_kb": 2.0, "speed_mbps": 3.1},
                                   ...]}}

This tool merges per-bench documents into one baseline file and diffs a
fresh run against it field by field:

    bench_compare.py BENCH_baseline.json fresh.json [--tolerance 0.25]
    bench_compare.py --merge merged.json fig5.json fig6.json ...
    bench_compare.py --self-test

When --merge sees the SAME bench more than once it folds the repetitions
element-wise into one entry. Timing noise is one-sided — contention only
ever makes a run slower — so the fold keeps the best observed value:
min for duration fields (*_s, *_us), max for throughput (*_mbps), median
for anything else (coordinates are identical across runs anyway).
Best-of-N on both sides of the diff is what keeps the default 25% band
usable at smoke scale (bench_smoke.sh runs each bench three times for
exactly this reason).

Comparison rules:
  * every bench in the baseline must appear in the fresh file (extras in
    the fresh file are reported but do not fail — new benches may land
    before the baseline is regenerated);
  * scales must match — comparing a --smoke run against a full-scale
    baseline is always a bug, not a regression;
  * per series: row counts and field names must match exactly;
  * per numeric field: |fresh - base| / max(|base|, eps) must stay within
    --tolerance (default 0.25). Coordinate fields (chunk sizes, day
    numbers) are bit-identical run to run, so they pass trivially;
    throughput fields get the tolerance band.

Exit status: 0 clean, 1 regression/shape mismatch, 2 usage error.
"""

import argparse
import json
import statistics
import sys

DEFAULT_TOLERANCE = 0.25
EPS = 1e-12


def normalize(doc, path):
    """Return {bench_name: {"scale": str, "series": {...}}} for either a
    single-bench document or a merged baseline document."""
    if "benches" in doc:
        benches = doc["benches"]
        if not isinstance(benches, dict):
            raise ValueError(f"{path}: 'benches' must be an object")
        return benches
    if "bench" in doc:
        return {doc["bench"]: {"scale": doc.get("scale", "default"),
                               "series": doc.get("series", {})}}
    raise ValueError(f"{path}: neither 'bench' nor 'benches' key present")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return normalize(json.load(f), path)
    except (OSError, json.JSONDecodeError) as err:
        raise ValueError(f"{path}: {err}") from err


def compare(baseline, fresh, tolerance):
    """Return a list of human-readable failure strings (empty == pass)."""
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        cur = fresh[name]
        if base.get("scale") != cur.get("scale"):
            failures.append(
                f"{name}: scale mismatch (baseline={base.get('scale')!r}, "
                f"fresh={cur.get('scale')!r}) — regenerate the baseline at "
                f"the scale CI runs")
            continue
        bseries, cseries = base.get("series", {}), cur.get("series", {})
        for sname, brows in sorted(bseries.items()):
            if sname not in cseries:
                failures.append(f"{name}/{sname}: series missing from fresh run")
                continue
            crows = cseries[sname]
            if len(brows) != len(crows):
                failures.append(
                    f"{name}/{sname}: row count {len(crows)} != baseline "
                    f"{len(brows)}")
                continue
            for i, (brow, crow) in enumerate(zip(brows, crows)):
                if set(brow) != set(crow):
                    failures.append(
                        f"{name}/{sname}[{i}]: fields {sorted(crow)} != "
                        f"baseline {sorted(brow)}")
                    continue
                for field, bval in brow.items():
                    cval = crow[field]
                    rel = abs(cval - bval) / max(abs(bval), EPS)
                    if rel > tolerance:
                        failures.append(
                            f"{name}/{sname}[{i}].{field}: {cval:g} vs "
                            f"baseline {bval:g} ({rel:+.0%} > "
                            f"{tolerance:.0%} tolerance)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} present in fresh run but not in baseline "
              f"(not compared)")
    return failures


def fold_values(field, values):
    """Best-observed fold across repetitions: noise only ever slows a run
    down, so min is the stable estimator for durations and max for
    throughputs; everything else (coordinates, ratios) takes the median."""
    if field.endswith("_s") or field.endswith("_us"):
        return min(values)
    if field.endswith("_mbps"):
        return max(values)
    return statistics.median(values)


def median_entry(name, entries):
    """Fold repeated runs of one bench into one element-wise entry (see
    fold_values for the per-field estimator).

    All repetitions must agree on scale, series names, row counts, and
    field names — disagreement means the bench is nondeterministic in
    shape, which is a bug worth failing on."""
    scales = {e.get("scale") for e in entries}
    if len(scales) != 1:
        raise ValueError(f"{name}: repetitions at mixed scales {sorted(scales)}")
    series_names = {frozenset(e.get("series", {})) for e in entries}
    if len(series_names) != 1:
        raise ValueError(f"{name}: repetitions disagree on series names")
    series = {}
    for sname in entries[0].get("series", {}):
        row_lists = [e["series"][sname] for e in entries]
        if len({len(rows) for rows in row_lists}) != 1:
            raise ValueError(f"{name}/{sname}: repetitions disagree on row count")
        rows = []
        for i in range(len(row_lists[0])):
            fields = set(row_lists[0][i])
            if any(set(rl[i]) != fields for rl in row_lists):
                raise ValueError(
                    f"{name}/{sname}[{i}]: repetitions disagree on fields")
            rows.append({f: fold_values(f, [rl[i][f] for rl in row_lists])
                         for f in sorted(fields)})
        series[sname] = rows
    return {"scale": entries[0].get("scale"), "series": series}


def merge(out_path, in_paths):
    groups = {}
    for path in in_paths:
        for name, entry in load(path).items():
            groups.setdefault(name, []).append(entry)
    benches = {}
    for name, entries in groups.items():
        benches[name] = (entries[0] if len(entries) == 1
                         else median_entry(name, entries))
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"benches": benches}, f, indent=2, sort_keys=True)
        f.write("\n")
    reps = max(len(e) for e in groups.values())
    print(f"merged {len(benches)} bench(es) into {out_path}"
          + (f" (median of up to {reps} repetitions)" if reps > 1 else ""))


# ---------------------------------------------------------------------------
# Self-test fixtures: exercised by `--self-test` and registered as a ctest
# (bench_compare_selftest) so the comparator itself is under test.
# ---------------------------------------------------------------------------

def _fixture(speed, scale="smoke"):
    return {"bench": "figX", "scale": scale,
            "series": {"s": [{"x": 1.0, "speed_mbps": speed}]}}


def self_test():
    base = normalize(_fixture(100.0), "<base>")

    checks = [
        ("identical run passes",
         compare(base, normalize(_fixture(100.0), "<f>"), 0.25), 0),
        ("10% drift within tolerance",
         compare(base, normalize(_fixture(90.0), "<f>"), 0.25), 0),
        ("50% regression fails",
         compare(base, normalize(_fixture(50.0), "<f>"), 0.25), 1),
        ("50% speedup also flagged (symmetric band)",
         compare(base, normalize(_fixture(150.0), "<f>"), 0.25), 1),
        ("scale mismatch fails",
         compare(base, normalize(_fixture(100.0, scale="full"), "<f>"), 0.25), 1),
        ("missing bench fails",
         compare(base, {}, 0.25), 1),
        ("wide tolerance admits the regression",
         compare(base, normalize(_fixture(50.0), "<f>"), 0.60), 0),
    ]
    missing_series = {"figX": {"scale": "smoke", "series": {}}}
    checks.append(("missing series fails", compare(base, missing_series, 0.25), 1))
    short = {"figX": {"scale": "smoke", "series": {"s": []}}}
    checks.append(("row-count mismatch fails", compare(base, short, 0.25), 1))
    odd_fields = {"figX": {"scale": "smoke",
                           "series": {"s": [{"x": 1.0, "other": 1.0}]}}}
    checks.append(("field mismatch fails", compare(base, odd_fields, 0.25), 1))

    reps = [normalize(_fixture(v), "<rep>")["figX"] for v in (80.0, 100.0, 400.0)]
    med = median_entry("figX", reps)
    fold_ok = (med["series"]["s"][0]["speed_mbps"] == 400.0  # max of _mbps
               and fold_values("lazy_s", [3.0, 1.0, 2.0]) == 1.0  # min of _s
               and fold_values("latency_us", [30, 10, 20]) == 10  # min of _us
               and fold_values("ratio", [3.0, 1.0, 2.0]) == 2.0)  # median
    checks.append(("repetition fold picks best/median per field",
                   [] if fold_ok else ["fold wrong"], 0))
    try:
        median_entry("figX", [{"scale": "smoke", "series": {"s": []}},
                              {"scale": "full", "series": {"s": []}}])
        mixed = ["mixed scales not caught"]
    except ValueError:
        mixed = []
    checks.append(("median rejects mixed scales", mixed, 0))

    ok = True
    for desc, failures, want in checks:
        got = min(len(failures), 1)
        status = "OK" if got == want else "FAIL"
        if got != want:
            ok = False
        print(f"  [{status}] {desc} ({len(failures)} finding(s))")
    if not ok:
        print("self-test FAILED", file=sys.stderr)
        return 1
    print("self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="baseline.json fresh.json, or --merge out in...")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="max relative drift per numeric field "
                             "(default %(default)s)")
    parser.add_argument("--merge", action="store_true",
                        help="merge per-bench JSONs: first file is the "
                             "output, the rest are inputs")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    try:
        if args.merge:
            if len(args.files) < 2:
                parser.error("--merge needs an output file and >=1 input")
            merge(args.files[0], args.files[1:])
            return 0

        if len(args.files) != 2:
            parser.error("expected: baseline.json fresh.json")
        baseline = load(args.files[0])
        fresh = load(args.files[1])
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"bench comparison FAILED ({len(failures)} finding(s), "
              f"tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    nseries = sum(len(b.get("series", {})) for b in baseline.values())
    print(f"bench comparison passed: {len(baseline)} bench(es), "
          f"{nseries} series within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
