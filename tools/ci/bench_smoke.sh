#!/usr/bin/env bash
# Run every bench_fig* binary (plus bench_recovery) at --smoke scale with
# --json output and merge
# the results into one document, suitable for diffing against
# BENCH_baseline.json (see tools/ci/bench_compare.py) or for regenerating
# that baseline (see EXPERIMENTS.md):
#
#   tools/ci/bench_smoke.sh <build-dir> <out.json>
#
# Each bench runs REPS times (default 3) and bench_compare.py --merge folds
# the repetitions into an element-wise median — single smoke-scale timings
# swing well past the default 25% comparison band, medians stay inside it.
# CI still widens the band (--tolerance 0.60) for shared-runner noise; the
# shape/scale/row-count checks are exact regardless.
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <build-dir> <out.json>" >&2
  exit 2
fi

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BUILD_DIR="$1"
OUT_JSON="$2"
REPS="${REPS:-3}"

BENCHES=(bench_fig5_keygen bench_fig6_encryption bench_fig7_updown
         bench_fig8_rekeying bench_fig9_storage bench_fig10_trace
         bench_recovery bench_loadgen)

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

PARTS=()
for bench in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "bench_smoke: ${bin} not built" >&2
    exit 1
  fi
  for rep in $(seq 1 "${REPS}"); do
    echo "=== bench_smoke: ${bench} (${rep}/${REPS}) ==="
    "${bin}" --smoke --json "${TMP_DIR}/${bench}.${rep}.json" \
        > "${TMP_DIR}/${bench}.${rep}.log"
    tail -n 2 "${TMP_DIR}/${bench}.${rep}.log"
    PARTS+=("${TMP_DIR}/${bench}.${rep}.json")
  done
done

python3 "${REPO_ROOT}/tools/ci/bench_compare.py" --merge "${OUT_JSON}" "${PARTS[@]}"
