#!/usr/bin/env bash
# Local CI gate: build + test matrix across sanitizer modes, plus the
# crypto-hygiene lint. Run from anywhere inside the repo:
#
#   tools/ci/check.sh              # full matrix: plain, asan+ubsan, tsan
#   tools/ci/check.sh plain        # one mode only
#   tools/ci/check.sh asan tsan    # subset
#
# Build trees land in build-ci-<mode>/ (gitignored). Every mode must end
# with 100% tests passed and zero sanitizer findings; sanitizers run with
# halt_on_error so a finding fails the test that triggered it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
cd "${REPO_ROOT}"

MODES=("$@")
if [[ ${#MODES[@]} -eq 0 ]]; then
  MODES=(plain asan tsan)
fi

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

run_mode() {
  local mode="$1"
  local build_dir="build-ci-${mode}"
  local cmake_args=()
  local -a test_env=()

  case "${mode}" in
    plain)
      cmake_args=(-DREED_SANITIZE=none)
      ;;
    asan)
      cmake_args=(-DREED_SANITIZE=address,undefined)
      test_env=("ASAN_OPTIONS=halt_on_error=1"
                "UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1")
      ;;
    tsan)
      cmake_args=(-DREED_SANITIZE=thread)
      test_env=("TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1")
      ;;
    *)
      echo "unknown mode: ${mode} (expected plain|asan|tsan)" >&2
      exit 2
      ;;
  esac

  echo "=== [${mode}] configure ==="
  cmake -B "${build_dir}" -S . "${GENERATOR_ARGS[@]}" \
      -DCMAKE_BUILD_TYPE=Release "${cmake_args[@]}"

  echo "=== [${mode}] build ==="
  cmake --build "${build_dir}" -j

  echo "=== [${mode}] test ==="
  # Long-pole gtest binaries (ABE pairing math, the client property suite)
  # dominate wall time; -j parallelizes across binaries, and the TSan tree
  # already carries widened per-test timeouts from tests/CMakeLists.txt.
  env "${test_env[@]}" ctest --test-dir "${build_dir}" \
      --output-on-failure -j "$(nproc)"
}

echo "=== crypto-hygiene lint ==="
python3 tools/lint/crypto_lint.py --self-test
python3 tools/lint/crypto_lint.py --root . src

for mode in "${MODES[@]}"; do
  run_mode "${mode}"
done

echo "=== all checks passed (${MODES[*]}) ==="
