#!/usr/bin/env bash
# Local CI gate: build + test matrix across sanitizer and static-analysis
# modes, plus the Python lints. Run from anywhere inside the repo:
#
#   tools/ci/check.sh                  # full matrix: plain, asan+ubsan, tsan, tsa, taint, lock, failpath, deadlock, faults, durability, model, loadgen, tidy
#   tools/ci/check.sh plain            # one mode only
#   tools/ci/check.sh asan tsa         # subset
#   tools/ci/check.sh --keep-going     # run every mode even after a failure
#
# A PASS/FAIL summary table for the selected modes always prints at the
# end; without --keep-going the first failing mode stops the matrix (later
# modes show as "skipped" in the table).
#
# Modes:
#   plain     release build + full ctest. -Werror=unused-result is ALWAYS on
#             (top-level CMakeLists), so this doubles as the nodiscard gate.
#   nodiscard alias for the build half of plain — compile-only proof that no
#             [[nodiscard]] result is dropped anywhere in the tree.
#   asan      AddressSanitizer + UBSan, halt_on_error.
#   tsan      ThreadSanitizer, halt_on_error.
#   tsa       clang -Wthread-safety -Werror static lock-discipline check
#             (compile-only; skipped with a notice when clang++ is absent).
#   taint     secret information-flow checks: taint_lint over src/ plus the
#             Secret type-wall fixture compiles (clean must build, the
#             secret-to-wire/secret-log leaks must NOT).
#   lock      lock-discipline lint: blocking calls under a lock, bare
#             CondVar::Wait outside a predicate loop, unranked mutex
#             declarations (pure Python, no build tree).
#   failpath  exception-hygiene lint: untyped throws, swallowed catches,
#             throws in dtors/noexcept, manual gauge dances, and the
#             fault-site manifest cross-check (pure Python, no build tree).
#   deadlock  REED_DEADLOCK_DETECT=ON build (runtime lock-rank + lock-order
#             cycle detection compiled into every reed::Mutex) + the
#             quick-label test suite. Any rank violation or cycle aborts the
#             offending test.
#   faults    REED_FAULT_INJECT=ON build (named fault points compiled into
#             the data path) + the quick suite and the failure-path sweep
#             (tests/fault_sweep_test.cc): every site armed mid-drive must
#             propagate typed, drain gauges, leave dedup state consistent,
#             and survive a disarmed retry.
#   durability crash-recovery lane (DESIGN.md §12): shares the faults build
#             tree (REED_FAULT_INJECT=ON) and runs the `durability` ctest
#             label — children SIGKILLed at armed fault sites mid-upload and
#             at every torn-WAL-tail truncation offset, then reopened and
#             checked for consistency plus byte-identical re-download, and
#             the durable model-checker sweep (security oracles across
#             restarts). Failing scenarios preserve the surviving store dir
#             plus a repro seed under <build>/tests/crash_artifacts/.
#   model     model-based differential checking (DESIGN.md §11): the
#             op-coverage lint (model_lint.py, both directions), then the
#             `model` + `lint` ctest labels — the executable-spec gtest
#             suite, seeded reed_model_check sweeps in both pipeline modes
#             plus the concurrent explainability mode, and the WILL_FAIL
#             injected-bug fixtures that prove the checker still bites.
#   loadgen   async-front-end load smoke: bench_loadgen --smoke drives the
#             thread-per-connection and epoll front ends plus the rekey
#             storm through per-tenant admission; the binary's exit code
#             carries the oracle verdicts (lost ops, package-digest drift,
#             dedup-state consistency). Shares the plain build tree.
#   cov       REED_COVERAGE=ON build + full ctest, then per-module line
#             coverage via gcov JSON (tools/ci/coverage_report.py) gated on
#             the floors in tools/ci/coverage_floors.json. Not in the
#             default matrix (it is a second full build of the tree);
#             hosted CI runs it as its own job.
#   tidy      clang-tidy over the compile database, warnings-as-errors
#             (skipped with a notice when clang-tidy is absent).
#
# Build trees land in build-ci-<mode>/ (gitignored). Every mode must end
# with 100% tests passed and zero findings; sanitizers run with
# halt_on_error so a finding fails the test that triggered it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
cd "${REPO_ROOT}"

KEEP_GOING=0
MODES=()
for arg in "$@"; do
  case "${arg}" in
    --keep-going) KEEP_GOING=1 ;;
    --*) echo "unknown flag: ${arg} (expected --keep-going)" >&2; exit 2 ;;
    *) MODES+=("${arg}") ;;
  esac
done
if [[ ${#MODES[@]} -eq 0 ]]; then
  MODES=(plain asan tsan tsa taint lock failpath deadlock faults durability model loadgen tidy)
fi

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi
# ccache makes the hosted CI matrix cheap: six modes share one compiler
# cache keyed per mode (sanitizer flags change the hash, so no cross-talk).
if command -v ccache > /dev/null 2>&1; then
  GENERATOR_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_mode() {
  local mode="$1"
  local build_dir="build-ci-${mode}"
  local cmake_args=()
  local -a test_env=()
  local -a test_args=()
  local build_only=0
  local tidy_after=0
  local cov_after=0
  local loadgen_after=0

  case "${mode}" in
    plain)
      cmake_args=(-DREED_SANITIZE=none)
      ;;
    nodiscard)
      # The unused-result gate is unconditional, so a plain build IS the
      # check; this mode just skips the test phase for a faster answer.
      cmake_args=(-DREED_SANITIZE=none)
      build_dir="build-ci-plain"
      build_only=1
      ;;
    asan)
      cmake_args=(-DREED_SANITIZE=address,undefined)
      test_env=("ASAN_OPTIONS=halt_on_error=1"
                "UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1")
      ;;
    tsan)
      cmake_args=(-DREED_SANITIZE=thread)
      test_env=("TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1")
      ;;
    tsa)
      if ! command -v clang++ > /dev/null 2>&1; then
        echo "=== [tsa] SKIPPED: clang++ not found ==="
        echo "    The thread-safety annotations are no-ops under GCC; install"
        echo "    clang to run the static lock-discipline analysis."
        return 0
      fi
      cmake_args=(-DREED_THREAD_SAFETY=ON -DCMAKE_CXX_COMPILER=clang++)
      # Compile-only: the analysis happens during the build. The annotation
      # fixture ctests (tsa_annotation_*) run under the plain modes too once
      # clang is present, so skipping ctest here avoids double work.
      build_only=1
      ;;
    taint)
      # No build tree needed: the lint is pure Python and the type-wall
      # fixtures are -fsyntax-only compiles against src/ headers.
      echo "=== [taint] secret information-flow lint ==="
      python3 tools/lint/taint_lint.py --self-test
      python3 tools/lint/taint_lint.py --root . src
      echo "=== [taint] Secret type-wall fixtures ==="
      local cxx="${CXX:-g++}"
      local wall_flags=(-std=c++20 -fsyntax-only -Isrc)
      "${cxx}" "${wall_flags[@]}" tools/lint/fixtures/secret_wall/taint_clean.cc
      echo "    taint_clean.cc: compiles (OK)"
      for leak in taint_secret_to_wire taint_secret_log; do
        if "${cxx}" "${wall_flags[@]}" \
            "tools/lint/fixtures/secret_wall/${leak}.cc" 2> /dev/null; then
          echo "    ${leak}.cc: COMPILED — the Secret type wall is broken" >&2
          return 1
        fi
        echo "    ${leak}.cc: rejected by the compiler (OK)"
      done
      return 0
      ;;
    lock)
      # No build tree needed: pure Python over src/.
      echo "=== [lock] lock-discipline lint ==="
      python3 tools/lint/lock_lint.py --self-test
      python3 tools/lint/lock_lint.py --root . src
      return 0
      ;;
    failpath)
      # No build tree needed: pure Python over src/ (the manifest
      # cross-check also reads tests/fault_sweep_manifest.h).
      echo "=== [failpath] exception-hygiene lint ==="
      python3 tools/lint/failpath_lint.py --self-test
      python3 tools/lint/failpath_lint.py --root . src
      return 0
      ;;
    deadlock)
      # Debug build with the runtime lock-rank/cycle detector compiled into
      # every reed::Mutex acquisition; the quick suite then exercises every
      # ranked lock-nesting path in src/. The detector aborts on the first
      # violation, so a pass proves the rank order in util/lock_rank.h is
      # consistent with every ordering the suite actually executes.
      cmake_args=(-DREED_SANITIZE=none -DREED_DEADLOCK_DETECT=ON)
      test_args=(-L quick)
      ;;
    faults)
      # Fault-point build: the sweep (label `fault`) arms every site in the
      # manifest mid-drive; the quick label keeps the unit suites alongside
      # to prove the disarmed points are inert.
      cmake_args=(-DREED_SANITIZE=none -DREED_FAULT_INJECT=ON)
      test_args=(-L "quick|fault")
      ;;
    durability)
      # Crash-recovery lane: the fault build is what makes the armed
      # SIGKILL-at-site kills land (plain builds compile the sites out and
      # the suite degrades to timed kills + reopen checks). Shares the
      # faults tree so the two lanes pay for one build.
      cmake_args=(-DREED_SANITIZE=none -DREED_FAULT_INJECT=ON)
      build_dir="build-ci-faults"
      test_args=(-L durability)
      ;;
    model)
      # The op-coverage lint gates the lane up front: if a public client op
      # is outside the generator's table the differential sweep below would
      # be vacuously green for it.
      echo "=== [model] op-coverage lint ==="
      python3 tools/lint/model_lint.py --root . --self-test
      python3 tools/lint/model_lint.py --root .
      cmake_args=(-DREED_SANITIZE=none)
      build_dir="build-ci-plain"  # same tree as plain: no extra flags
      test_args=(-L "model|lint")
      ;;
    loadgen)
      # Shares the plain tree; the smoke run is the check (seconds of wall
      # time), no ctest phase.
      cmake_args=(-DREED_SANITIZE=none)
      build_dir="build-ci-plain"
      loadgen_after=1
      ;;
    cov)
      cmake_args=(-DREED_SANITIZE=none -DREED_COVERAGE=ON)
      cov_after=1
      ;;
    tidy)
      if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "=== [tidy] SKIPPED: clang-tidy not found ==="
        echo "    Install clang-tidy to run the static-analysis pass; the"
        echo "    compile database is still exported by the plain mode."
        return 0
      fi
      cmake_args=(-DREED_SANITIZE=none -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
      tidy_after=1
      build_only=1
      ;;
    *)
      echo "unknown mode: ${mode} (expected plain|nodiscard|asan|tsan|tsa|taint|lock|failpath|deadlock|faults|durability|model|loadgen|cov|tidy)" >&2
      exit 2
      ;;
  esac

  echo "=== [${mode}] configure ==="
  cmake -B "${build_dir}" -S . "${GENERATOR_ARGS[@]}" \
      -DCMAKE_BUILD_TYPE=Release "${cmake_args[@]}"

  echo "=== [${mode}] build ==="
  cmake --build "${build_dir}" -j

  if [[ ${tidy_after} -eq 1 ]]; then
    echo "=== [${mode}] clang-tidy (warnings-as-errors) ==="
    # The checks ride in .clang-tidy when present; -warnings-as-errors='*'
    # turns any finding into a failure either way.
    local -a tidy_sources
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy > /dev/null 2>&1; then
      run-clang-tidy -p "${build_dir}" -quiet -warnings-as-errors='*' \
          "${tidy_sources[@]}"
    else
      clang-tidy -p "${build_dir}" --quiet -warnings-as-errors='*' \
          "${tidy_sources[@]}"
    fi
    echo "=== [${mode}] clang-tidy clean ==="
    return 0
  fi

  if [[ ${loadgen_after} -eq 1 ]]; then
    echo "=== [${mode}] bench_loadgen --smoke ==="
    "${build_dir}/bench/bench_loadgen" --smoke
    echo "=== [${mode}] load smoke clean ==="
    return 0
  fi

  if [[ ${build_only} -eq 1 ]]; then
    echo "=== [${mode}] build-only mode: done ==="
    return 0
  fi

  echo "=== [${mode}] test ==="
  # Long-pole gtest binaries (ABE pairing math, the client property suite)
  # dominate wall time; -j parallelizes across binaries, and the TSan tree
  # already carries widened per-test timeouts from tests/CMakeLists.txt.
  env "${test_env[@]}" ctest --test-dir "${build_dir}" \
      --output-on-failure -j "$(nproc)" "${test_args[@]}"

  if [[ ${cov_after} -eq 1 ]]; then
    echo "=== [${mode}] per-module coverage floors ==="
    python3 tools/ci/coverage_report.py --build-dir "${build_dir}" --root .
  fi
}

echo "=== crypto-hygiene lint ==="
python3 tools/lint/crypto_lint.py --self-test
python3 tools/lint/crypto_lint.py --root . src

echo "=== module-layering lint ==="
python3 tools/lint/layering_lint.py --self-test
python3 tools/lint/layering_lint.py --root . src

echo "=== secret information-flow lint ==="
python3 tools/lint/taint_lint.py --self-test
python3 tools/lint/taint_lint.py --root . src

echo "=== lock-discipline lint ==="
python3 tools/lint/lock_lint.py --self-test
python3 tools/lint/lock_lint.py --root . src

echo "=== exception-hygiene lint ==="
python3 tools/lint/failpath_lint.py --self-test
python3 tools/lint/failpath_lint.py --root . src

echo "=== model op-coverage lint ==="
python3 tools/lint/model_lint.py --root . --self-test
python3 tools/lint/model_lint.py --root .

# Per-mode verdicts, reported in a summary table whether or not the matrix
# ran to completion. The subshell re-enables errexit so a mid-mode failure
# still aborts that mode; the caller decides whether to continue.
declare -A RESULTS=()
OVERALL=0
for mode in "${MODES[@]}"; do
  set +e
  ( set -e; run_mode "${mode}" )
  status=$?
  set -e
  if [[ ${status} -eq 0 ]]; then
    RESULTS["${mode}"]="PASS"
  else
    RESULTS["${mode}"]="FAIL"
    OVERALL=1
    if [[ ${KEEP_GOING} -eq 0 ]]; then
      echo "=== [${mode}] FAILED — stopping (use --keep-going to run the rest) ===" >&2
      break
    fi
    echo "=== [${mode}] FAILED — continuing (--keep-going) ===" >&2
  fi
done

echo
echo "=== mode summary ==="
for mode in "${MODES[@]}"; do
  printf '  %-10s %s\n' "${mode}" "${RESULTS[${mode}]:-skipped}"
done

if [[ ${OVERALL} -ne 0 ]]; then
  echo "=== checks FAILED ===" >&2
  exit 1
fi
echo "=== all checks passed (${MODES[*]}) ==="
