#!/usr/bin/env python3
"""Per-module gcov line-coverage report with enforced floors.

Drives gcov (JSON mode) over every .gcda profile a REED_COVERAGE=ON test run
left in the build tree, folds the per-line execution counts down to
repo-relative source files (max count wins when the same line is profiled by
several translation units — headers), and aggregates per top-level module
(src/store, src/net, ...).

Modules listed in the floors file (tools/ci/coverage_floors.json, a
{"src/<module>": percent} map) are GATES: measured line coverage below the
floor fails the run. Other modules are reported FYI. Floors are deliberately
a few points under current measurements — the gate catches regressions
(a new untested subsystem, a test lane silently dropped), not noise.

Usage:
  coverage_report.py --build-dir build-ci-cov [--root .] [--floors FILE]
  coverage_report.py --build-dir build-ci-cov --report-only   # no gating
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        out.extend(os.path.join(dirpath, f) for f in filenames
                   if f.endswith(".gcda"))
    return sorted(out)


def run_gcov(gcda, build_dir):
    """Parse one profile; returns gcov's JSON dict or None on failure."""
    # --stdout keeps the build tree clean (no .gcov litter); JSON mode is
    # the only gcov output stable enough to parse.
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
        cwd=build_dir, capture_output=True, text=True)
    if proc.returncode != 0 or not proc.stdout.strip():
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def module_of(rel_path):
    """src/store/recipe.cc -> src/store; anything else -> first component."""
    parts = rel_path.split("/")
    return "/".join(parts[:2]) if parts[0] == "src" and len(parts) > 2 \
        else parts[0]


def collect(build_dir, root):
    """{rel_file: {line: max_count}} across every profiled TU."""
    root = os.path.realpath(root) + os.sep
    lines = collections.defaultdict(dict)
    gcdas = find_gcda(build_dir)
    parsed = 0
    for gcda in gcdas:
        doc = run_gcov(gcda, build_dir)
        if doc is None:
            continue
        parsed += 1
        for f in doc.get("files", []):
            path = os.path.realpath(os.path.join(build_dir, f["file"]))
            if not path.startswith(root):
                continue  # system headers, gtest, ...
            rel = path[len(root):]
            if not rel.startswith("src/"):
                continue  # gate the library, not tests/tools
            per_file = lines[rel]
            for ln in f.get("lines", []):
                n = ln["line_number"]
                per_file[n] = max(per_file.get(n, 0), ln["count"])
    return lines, len(gcdas), parsed


def aggregate(lines):
    """{module: (covered, total)} plus the same per file."""
    mods = collections.defaultdict(lambda: [0, 0])
    files = {}
    for rel, per_line in sorted(lines.items()):
        covered = sum(1 for c in per_line.values() if c > 0)
        total = len(per_line)
        files[rel] = (covered, total)
        m = mods[module_of(rel)]
        m[0] += covered
        m[1] += total
    return mods, files


def pct(covered, total):
    return 100.0 * covered / total if total else 0.0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True,
                    help="REED_COVERAGE=ON build tree holding .gcda profiles")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--floors", default=None,
                    help="floors JSON (default: tools/ci/coverage_floors.json)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the table but never fail on floors")
    ap.add_argument("--show-files", action="store_true",
                    help="also print per-file coverage")
    args = ap.parse_args()

    floors_path = args.floors or os.path.join(
        args.root, "tools", "ci", "coverage_floors.json")
    with open(floors_path, encoding="utf-8") as f:
        floors = json.load(f)

    lines, found, parsed = collect(args.build_dir, args.root)
    if not parsed:
        print(f"coverage_report: no usable .gcda profiles under "
              f"{args.build_dir} ({found} found) — was the tree built with "
              "-DREED_COVERAGE=ON and were the tests run?", file=sys.stderr)
        return 2
    mods, files = aggregate(lines)

    if args.show_files:
        for rel, (covered, total) in sorted(files.items()):
            print(f"  {pct(covered, total):6.1f}%  {covered:5d}/{total:<5d} "
                  f"{rel}")

    print(f"coverage_report: {parsed}/{found} profiles, "
          f"{len(files)} source files")
    failures = []
    for mod in sorted(set(mods) | set(floors)):
        covered, total = mods.get(mod, (0, 0))
        p = pct(covered, total)
        floor = floors.get(mod)
        if floor is None:
            verdict = "    (fyi)"
        elif total == 0:
            verdict = f" FAIL (no profiled lines, floor {floor:.0f}%)"
            failures.append(mod)
        elif p < floor:
            verdict = f" FAIL (floor {floor:.0f}%)"
            failures.append(mod)
        else:
            verdict = f" ok   (floor {floor:.0f}%)"
        print(f"  {p:6.1f}%  {covered:5d}/{total:<5d} {mod}{verdict}")

    if failures and not args.report_only:
        print(f"coverage_report: {len(failures)} module(s) below floor: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("coverage_report: all floors hold" if not failures
          else "coverage_report: floors ignored (--report-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
