// Small shared helpers for the command-line tools: flag parsing and
// whole-file I/O. Deliberately dependency-free.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace reed::cli {

// Parses "--flag value" pairs and positional arguments.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[name] = argv[++i];
        } else {
          flags_[name] = "true";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  std::string Get(const std::string& name, const std::string& def = "") const {
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }

  std::string Require(const std::string& name) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) throw Error("missing required flag --" + name);
    return it->second;
  }

  bool Has(const std::string& name) const { return flags_.contains(name); }

  std::uint64_t GetInt(const std::string& name, std::uint64_t def) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? def : std::stoull(it->second);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

inline Bytes ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string s = ss.str();
  return Bytes(s.begin(), s.end());
}

inline void WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("write failed: " + path);
}

// "host:port" -> pair; bare "port" binds localhost.
inline std::pair<std::string, std::uint16_t> ParseHostPort(
    const std::string& spec) {
  auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return {"127.0.0.1", static_cast<std::uint16_t>(std::stoi(spec))};
  }
  return {spec.substr(0, colon),
          static_cast<std::uint16_t>(std::stoi(spec.substr(colon + 1)))};
}

inline std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace reed::cli
