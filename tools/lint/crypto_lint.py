#!/usr/bin/env python3
"""Crypto-hygiene lint for REED sources.

Walks C++ sources and flags patterns that undermine the security argument of
an encrypted-deduplication system:

  ban-rand            libc/stdlib RNGs (rand, srand, random, *rand48) — all
                      randomness must come from crypto::Rng (ChaCha20-based).
  secret-memcmp       memcmp on buffers — memcmp short-circuits on the first
                      differing byte, turning MAC/key checks into timing
                      oracles. Use reed::SecureCompare.
  secret-eq           operator==/!= between secret-named buffers (keys, MACs,
                      tags, digests, fingerprints). std::vector/array
                      operator== also short-circuits. Use reed::SecureCompare.
  unzeroized-key-local a key-typed local (Bytes/array named *key*, *secret*,
                      *ikm*, *kek*, *prk*, *okm*) whose scope ends without
                      SecureZero/ScopedWipe, a return, or a std::move —
                      key material must not linger in dead stack/heap memory.
  memset-wipe         memset used to wipe a key-named buffer — a dead-store
                      memset is exactly what the optimizer elides, leaving
                      the key in memory. Use reed::SecureZero/ScopedWipe.
  raw-key-compare     ==/!= or memcmp where an operand is *key*-named (key,
                      secret, ikm, kek, prk, okm) — the sharper subset of
                      secret-eq/secret-memcmp: comparing raw key material
                      with short-circuiting primitives is always a bug. Use
                      reed::SecureCompare or Secret::ConstantTimeEquals.

False positives that survive a manual audit go in the allowlist file
(default: tools/lint/allowlist.txt) as `<relpath>:<rule>:<token>` lines.
Keep that file short — every entry is a standing exception.

Usage:
  crypto_lint.py [--root REPO] [--allowlist FILE] [PATHS...]   # lint (default: src)
  crypto_lint.py --self-test                                   # run fixture suite
"""

import argparse
import os
import re
import sys

SECRET_EQ_TOKENS = r"key|mac|tag|digest|fingerprint|secret|ikm|kek|prk|okm"
KEY_LOCAL_TOKENS = r"key|secret|ikm|kek|prk|okm"
# Identifiers that merely *talk about* secrets: public halves, versions,
# counters, cache bookkeeping. These never hold raw key bytes.
BENIGN_TOKENS = re.compile(
    r"public|pub\b|_pub|version|size|count|len\b|length|_id\b|\bid_|name"
    r"|index|cache|manager|policy|server|offset|cost|bytes_budget",
    re.IGNORECASE,
)

RULES = ("ban-rand", "secret-memcmp", "secret-eq", "unzeroized-key-local",
         "memset-wipe", "raw-key-compare")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal bodies, preserving newlines so
    line numbers in findings stay true."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
            elif c == "'":
                state = "squote"
                out.append(c)
            else:
                out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail back to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, token, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.token = token
        self.message = message

    def key(self):
        return f"{self.path}:{self.rule}:{self.token}"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RAND_RE = re.compile(r"\b(rand|srand|random|srandom|drand48|lrand48|mrand48)\s*\(")
MEMCMP_RE = re.compile(r"\b(?:std::)?(memcmp|bcmp)\s*\(")
# LHS operand of a comparison: a.b->c chains, calls allowed at the tail.
EQ_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*(?:\(\))?)*)\s*(==|!=)\s*"
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*(?:\(\))?)*)"
)
DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:[A-Za-z_]\w*::)*"
    r"(Bytes|AesKey|Sha256Digest|std::vector<\s*std::uint8_t\s*>|"
    r"std::array<[^>]*>)\s*(&?)\s*"
    r"([A-Za-z_]\w*)\s*(?:=|;|\{)"  # no '(': avoids function definitions
)
SECRET_EQ_TOKEN_RE = re.compile(rf"(?:^|_)({SECRET_EQ_TOKENS})s?(?:_|$)", re.IGNORECASE)
KEY_LOCAL_TOKEN_RE = re.compile(rf"({KEY_LOCAL_TOKENS})", re.IGNORECASE)
RAW_KEY_TOKEN_RE = re.compile(rf"(?:^|_)({KEY_LOCAL_TOKENS})s?(?:_|$)", re.IGNORECASE)
SCALAR_TAIL_RE = re.compile(
    r"(?:\.|->)(size|empty|length|count|version|ByteLength)\(\)$"
)
# First argument of a memset call (incl. the builtin), up to the comma.
MEMSET_RE = re.compile(
    r"\b(?:std::|__builtin_)?memset\s*\(\s*([^,()]*(?:\([^()]*\))?[^,]*),")


def looks_secret_buffer(expr):
    """True when a comparison operand plausibly names a secret byte buffer."""
    if SCALAR_TAIL_RE.search(expr):
        return False
    leaf = expr.split(".")[-1].split("->")[-1]
    if not SECRET_EQ_TOKEN_RE.search(leaf):
        return False
    if BENIGN_TOKENS.search(leaf):
        return False
    return True


def looks_raw_key(expr):
    """True when a comparison operand names raw key material specifically."""
    if SCALAR_TAIL_RE.search(expr):
        return False
    leaf = expr.split(".")[-1].split("->")[-1]
    return bool(RAW_KEY_TOKEN_RE.search(leaf)) and \
        not BENIGN_TOKENS.search(leaf)


def lint_text(path, raw):
    code = strip_comments_and_strings(raw)
    lines = code.split("\n")
    findings = []

    for lineno, line in enumerate(lines, start=1):
        m = RAND_RE.search(line)
        if m:
            findings.append(Finding(
                path, lineno, "ban-rand", m.group(1),
                f"insecure RNG {m.group(1)}() — use crypto::Rng "
                "(ChaChaRng / SecureRandom)"))
        m = MEMCMP_RE.search(line)
        if m:
            findings.append(Finding(
                path, lineno, "secret-memcmp", m.group(1),
                f"{m.group(1)}() short-circuits on the first differing byte "
                "— use reed::SecureCompare for keys/MACs (allowlist audited "
                "non-secret uses)"))
            key_args = [t for t in re.findall(r"[A-Za-z_]\w*", line[m.end():])
                        if RAW_KEY_TOKEN_RE.search(t)
                        and not BENIGN_TOKENS.search(t)]
            if key_args:
                findings.append(Finding(
                    path, lineno, "raw-key-compare", key_args[0],
                    f"{m.group(1)}() on key-named `{key_args[0]}` — comparing"
                    " raw key material with a short-circuiting primitive is "
                    "always a bug; use reed::SecureCompare or "
                    "Secret::ConstantTimeEquals"))
        m = MEMSET_RE.search(line)
        if m:
            dest = m.group(1).strip()
            if KEY_LOCAL_TOKEN_RE.search(dest) and not BENIGN_TOKENS.search(dest):
                findings.append(Finding(
                    path, lineno, "memset-wipe", dest,
                    f"memset wiping key-named buffer `{dest}` is a dead "
                    "store the optimizer can elide — use reed::SecureZero "
                    "or ScopedWipe"))
        for m in EQ_RE.finditer(line):
            lhs, _, rhs = m.groups()
            if looks_secret_buffer(lhs) or looks_secret_buffer(rhs):
                tok = lhs if looks_secret_buffer(lhs) else rhs
                findings.append(Finding(
                    path, lineno, "secret-eq", tok,
                    f"comparison of secret-named buffer `{tok}` with "
                    "==/!= is not constant time — use reed::SecureCompare"))
            if looks_raw_key(lhs) or looks_raw_key(rhs):
                tok = lhs if looks_raw_key(lhs) else rhs
                findings.append(Finding(
                    path, lineno, "raw-key-compare", tok,
                    f"==/!= on key-named `{tok}` — comparing raw key "
                    "material with a short-circuiting primitive is always a "
                    "bug; use reed::SecureCompare or "
                    "Secret::ConstantTimeEquals"))

    findings.extend(find_unzeroized_locals(path, lines))
    return findings


def find_unzeroized_locals(path, lines):
    findings = []
    for lineno, line in enumerate(lines, start=1):
        m = DECL_RE.match(line)
        if not m:
            continue
        _, ref, name = m.group(1), m.group(2), m.group(3)
        if ref == "&":
            continue  # non-owning reference
        if not KEY_LOCAL_TOKEN_RE.search(name):
            continue
        if BENIGN_TOKENS.search(name):
            continue
        # Namespace-scope declarations (constants) are not locals: a local
        # declaration lives at brace depth >= 1 relative to file start.
        depth_before = 0
        for prior in lines[: lineno - 1]:
            depth_before += prior.count("{") - prior.count("}")
        decl_line_open = line.count("{") - line.count("}")
        if depth_before + max(decl_line_open, 0) < 1:
            continue
        if scope_handles_secret(lines, lineno, name):
            continue
        findings.append(Finding(
            path, lineno, "unzeroized-key-local", name,
            f"key-typed local `{name}` leaves scope without SecureZero/"
            "ScopedWipe (and is neither returned nor moved out)"))
    return findings


def scope_handles_secret(lines, decl_lineno, name):
    """Scans from the declaration to the end of its enclosing scope for a
    wipe, return, or ownership transfer of `name`."""
    wipe_re = re.compile(
        rf"\b(SecureZero|SecureWipe)\s*\(\s*{re.escape(name)}\b"
        rf"|\bScopedWipe\s+\w+\s*[({{][^;]*\b{re.escape(name)}\b"
        rf"|\bScopedWipe\s*[({{]\s*{re.escape(name)}\b")
    release_re = re.compile(
        rf"\breturn\b[^;]*\b{re.escape(name)}\b"
        rf"|\bstd::move\s*\(\s*{re.escape(name)}\s*\)")
    depth = 0
    for line in lines[decl_lineno - 1:]:
        if wipe_re.search(line) or release_re.search(line):
            return True
        depth += line.count("{") - line.count("}")
        if depth < 0:
            return False
    return False


def load_allowlist(path):
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries[line] = 0
    return entries


def collect_files(root, paths):
    files = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        if not os.path.isdir(full):
            # A typo'd path silently scanning zero files would report clean.
            raise SystemExit(f"crypto_lint: path does not exist: {full}")
        for dirpath, _, names in os.walk(full):
            for n in sorted(names):
                if n.endswith((".cc", ".cpp", ".h", ".hpp")):
                    files.append(os.path.join(dirpath, n))
    return sorted(files)


def run_lint(root, paths, allowlist_path):
    allow = load_allowlist(allowlist_path)
    reported = []
    for full in collect_files(root, paths):
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        for finding in lint_text(rel, raw):
            if finding.key() in allow:
                allow[finding.key()] += 1
            else:
                reported.append(finding)

    for finding in reported:
        print(finding)
    stale = [k for k, hits in allow.items() if hits == 0]
    for k in stale:
        print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"crypto_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"crypto_lint: clean ({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z\-]+)")


def run_self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures")
    failures = []
    files = collect_files(root, [os.path.join("tools", "lint", "fixtures")])
    if not files:
        print(f"crypto_lint --self-test: no fixtures under {fixture_dir}")
        return 1
    for full in files:
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        # Fixtures are shared with taint_lint; only our own rule names count.
        expected = sorted(r for r in EXPECT_RE.findall(raw) if r in RULES)
        got = sorted(f.rule for f in lint_text(rel, raw))
        if expected != got:
            failures.append(f"{rel}: expected {expected or '[clean]'}, "
                            f"got {got or '[clean]'}")
    for f in failures:
        print("FAIL " + f)
    print(f"crypto_lint --self-test: {len(files) - len(failures)}/{len(files)} "
          "fixtures pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint/allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture files and check expectations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root (default: src)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "allowlist.txt")
    return run_lint(root, args.paths or ["src"], allowlist)


if __name__ == "__main__":
    sys.exit(main())
