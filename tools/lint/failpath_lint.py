#!/usr/bin/env python3
"""Exception-hygiene lint for REED sources (DESIGN.md §8).

The fault sweep (tests/fault_sweep_test.cc) proves the failure paths that
RUN behave; this lint constrains the failure paths that are WRITTEN:

  raw-throw           a throw whose operand is not a reed error type. Every
                      deliberate failure must be a reed::Error subclass
                      (util/error.h taxonomy: StoreError, WireError,
                      NetError, CryptoError, KeyManagerError, FaultError,
                      ...) so callers can catch `const Error&` at the API
                      boundary and the sweep's typed-propagation invariant
                      holds. Lexically: the thrown expression must start
                      with a type whose name ends in `Error`; `throw;`
                      (rethrow) is always fine.

  catch-all-swallow   `catch (...)` that neither rethrows (`throw;`,
                      std::rethrow_exception) nor captures
                      std::current_exception(). A catch-all that drops the
                      exception on the floor erases failures the sweep
                      exists to observe.

  silent-swallow      a typed catch that does not rethrow and never
                      examines what it caught — either the clause binds no
                      name (`catch (const Error&)`) or the bound name is
                      never mentioned in the body. Swallowing a typed error
                      is occasionally correct (a detached serving loop has
                      no caller to rethrow to) but must be audited: count
                      it via an errors.swallowed.<site> counter and
                      allowlist the site with the rationale.

  empty-catch         a catch with an empty body: the error is not even
                      counted. Never correct in this tree.

  throw-in-dtor       a lexical throw inside a destructor body. Destructors
                      run during unwinds; throwing there is terminate().

  throw-in-noexcept   a lexical throw inside a function whose signature is
                      `noexcept {` / `noexcept(true) {`. Also terminate().

  gauge-dance         a catch body that manually decrements a gauge
                      (`.Add(-`/`->Add(-`). The manual raise/try/lower
                      dance leaks the gauge on any exit path the author
                      forgot; use the RAII obs::GaugeGuard instead.

  fault-manifest      cross-check (runs only when linting the default src
                      tree): the REED_FAULT_POINT sites planted in src/ and
                      the manifest array in tests/fault_sweep_manifest.h
                      must agree in BOTH directions, so every planted site
                      is swept and every swept site exists. This scan reads
                      RAW text (sites live inside string literals, which
                      strip_comments_and_strings blanks).

Catch-body analysis is lexical (regex + brace matching); a nested try/catch
inside a catch body can make the outer catch look handled. That costs
precision, not soundness of the workflow: the fixtures pin the behaviour and
the allowlist records the audited exceptions.

Usage:
  failpath_lint.py [--root REPO] [--allowlist FILE] [PATHS...]  # lint (default: src)
  failpath_lint.py --self-test                                  # run fixture suite
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crypto_lint import (  # noqa: E402  (shared helpers, single source of truth)
    Finding,
    collect_files,
    load_allowlist,
    strip_comments_and_strings,
)

RULES = ("raw-throw", "catch-all-swallow", "silent-swallow", "empty-catch",
         "throw-in-dtor", "throw-in-noexcept", "gauge-dance",
         "fault-manifest")

THROW_RE = re.compile(r"\bthrow\b")
# `throw <head>` where head is the (possibly qualified) start of the thrown
# expression. Rethrow-of-a-name (`throw e;`) is caught too: it slices.
THROW_HEAD_RE = re.compile(r"\bthrow\s+((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)")
REED_ERROR_RE = re.compile(r"^(?:[A-Z]\w*)?Error$")

CATCH_RE = re.compile(r"\bcatch\s*\(([^)]*)\)\s*\{")
CLAUSE_RE = re.compile(
    r"^(?:const\s+)?((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
    r"\s*[&*]?\s*([A-Za-z_]\w*)?$")
RETHROW_RE = re.compile(r"\bthrow\s*;|rethrow_exception|current_exception")
GAUGE_DEC_RE = re.compile(r"(?:\.|->)\s*Add\s*\(\s*-")

DTOR_RE = re.compile(r"~[A-Za-z_]\w*\s*\(\s*\)\s*(?:noexcept\s*)?"
                     r"(?:override\s*)?(?:REED_\w+\s*\(\s*\)\s*)?\{")
# Only unconditional noexcept: `noexcept {` / `noexcept(true) {`.
# noexcept(false) and conditional noexcept(expr) may legitimately throw.
NOEXCEPT_RE = re.compile(r"\bnoexcept\b\s*(?:\(\s*true\s*\))?\s*"
                         r"(?:override\s*)?\{")

MANIFEST_REL = os.path.join("tests", "fault_sweep_manifest.h")
FAULT_POINT_RE = re.compile(r'REED_FAULT_POINT\(\s*"([^"]+)"\s*\)')
QUOTED_RE = re.compile(r'"([^"]+)"')


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


def matching_brace(text, open_idx):
    """Index just past the `}` matching the `{` at open_idx (or len(text))."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def short_type(qualified):
    return re.sub(r"\s", "", qualified).split("::")[-1]


def lint_text(path, raw):
    text = strip_comments_and_strings(raw)
    findings = []

    # --- throws --------------------------------------------------------
    for m in THROW_HEAD_RE.finditer(text):
        head = short_type(m.group(1))
        if not REED_ERROR_RE.match(head):
            findings.append(Finding(
                path, line_of(text, m.start()), "raw-throw", head,
                f"thrown operand `{head}` is not a reed error type; throw a "
                "reed::Error subclass (util/error.h) so the failure stays "
                "typed all the way to the client API"))

    # --- throws inside dtors / noexcept functions ----------------------
    for scope_re, rule, what in ((DTOR_RE, "throw-in-dtor", "destructor"),
                                 (NOEXCEPT_RE, "throw-in-noexcept",
                                  "noexcept function")):
        for m in scope_re.finditer(text):
            open_idx = text.index("{", m.start())
            body = text[open_idx:matching_brace(text, open_idx)]
            t = THROW_RE.search(body)
            if t:
                findings.append(Finding(
                    path, line_of(text, open_idx + t.start()), rule, "throw",
                    f"throw inside a {what} is std::terminate during an "
                    "unwind; report through a counter or error state "
                    "instead"))

    # --- catch clauses -------------------------------------------------
    for m in CATCH_RE.finditer(text):
        clause = m.group(1).strip()
        open_idx = m.end() - 1
        body = text[open_idx + 1:matching_brace(text, open_idx) - 1]
        lineno = line_of(text, m.start())
        handled = bool(RETHROW_RE.search(body))

        g = GAUGE_DEC_RE.search(body)
        if g:
            findings.append(Finding(
                path, line_of(text, open_idx + 1 + g.start()), "gauge-dance",
                "manual-gauge",
                "manual gauge decrement in a catch body; the raise/try/"
                "lower dance leaks on forgotten exit paths — use the RAII "
                "obs::GaugeGuard"))

        if clause == "...":
            if not body.strip():
                findings.append(Finding(
                    path, lineno, "empty-catch", "catch-all",
                    "empty catch(...) drops the exception without even "
                    "counting it"))
            elif not handled:
                findings.append(Finding(
                    path, lineno, "catch-all-swallow", "catch-all",
                    "catch(...) without throw;/rethrow_exception/"
                    "current_exception erases the failure; rethrow or "
                    "capture the exception_ptr"))
            continue

        cm = CLAUSE_RE.match(clause)
        if not cm:
            continue  # exotic clause; not this lint's business
        token = short_type(cm.group(1))
        name = cm.group(2)
        if not body.strip():
            findings.append(Finding(
                path, lineno, "empty-catch", token,
                f"empty catch ({token}) drops the error without even "
                "counting it"))
        elif not handled and (
                not name or not re.search(rf"\b{name}\b", body)):
            findings.append(Finding(
                path, lineno, "silent-swallow", token,
                f"typed catch ({token}) neither rethrows nor examines the "
                "error; if swallowing is the design, count it via an "
                "errors.swallowed.<site> counter and allowlist the site "
                "with the audit rationale"))

    # Nested catches can make one physical line carry duplicate findings;
    # report each (line, rule, token) once.
    seen = set()
    unique = []
    for f in findings:
        k = (f.line, f.rule, f.token)
        if k not in seen:
            seen.add(k)
            unique.append(f)
    return unique


def check_manifest(root):
    """Both-direction cross-check of planted sites vs the sweep manifest."""
    findings = []
    manifest_path = os.path.join(root, MANIFEST_REL)
    if not os.path.exists(manifest_path):
        return [Finding(MANIFEST_REL, 1, "fault-manifest", "missing",
                        "fault-site manifest not found")]
    with open(manifest_path, encoding="utf-8") as f:
        manifest_raw = f.read()
    manifest = {}
    for m in QUOTED_RE.finditer(manifest_raw):
        manifest[m.group(1)] = line_of(manifest_raw, m.start())

    planted = {}
    for full in collect_files(root, ["src"]):
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        for m in FAULT_POINT_RE.finditer(raw):
            planted.setdefault(m.group(1), (rel, line_of(raw, m.start())))

    for site, (rel, lineno) in sorted(planted.items()):
        if site not in manifest:
            findings.append(Finding(
                rel, lineno, "fault-manifest", site,
                f"REED_FAULT_POINT(\"{site}\") has no entry in "
                f"{MANIFEST_REL}; an unlisted site is never swept"))
    for site, lineno in sorted(manifest.items()):
        if site not in planted:
            findings.append(Finding(
                MANIFEST_REL, lineno, "fault-manifest", site,
                f"manifest entry \"{site}\" matches no REED_FAULT_POINT "
                "in src/"))
    return findings


def run_lint(root, paths, allowlist_path):
    allow = load_allowlist(allowlist_path)
    reported = []
    for full in collect_files(root, paths):
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        for finding in lint_text(rel, raw):
            if finding.key() in allow:
                allow[finding.key()] += 1
            else:
                reported.append(finding)

    # The manifest cross-check only makes sense against the real tree, not
    # when pointing the lint at an individual fixture file.
    if paths == ["src"]:
        for finding in check_manifest(root):
            if finding.key() in allow:
                allow[finding.key()] += 1
            else:
                reported.append(finding)

    for finding in reported:
        print(finding)
    stale = [k for k, hits in allow.items() if hits == 0]
    for k in stale:
        print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"failpath_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"failpath_lint: clean ({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z\-]+)")


def run_self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures", "failpath")
    failures = []
    files = collect_files(root, [os.path.join("tools", "lint", "fixtures",
                                              "failpath")])
    if not files:
        print(f"failpath_lint --self-test: no fixtures under {fixture_dir}")
        return 1
    for full in files:
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        expected = sorted(r for r in EXPECT_RE.findall(raw) if r in RULES)
        got = sorted(f.rule for f in lint_text(rel, raw))
        if expected != got:
            failures.append(f"{rel}: expected {expected or '[clean]'}, "
                            f"got {got or '[clean]'}")
    for f in failures:
        print("FAIL " + f)
    print(f"failpath_lint --self-test: {len(files) - len(failures)}/"
          f"{len(files)} fixtures pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file "
                         "(default: tools/lint/failpath_allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture files and check expectations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root (default: src)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "failpath_allowlist.txt")
    return run_lint(root, args.paths or ["src"], allowlist)


if __name__ == "__main__":
    sys.exit(main())
