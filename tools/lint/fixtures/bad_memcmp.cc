// Fixture: memcmp on a MAC is a timing oracle.
#include <cstring>

bool MacMatches(const unsigned char* mac, const unsigned char* expect) {
  // LINT-EXPECT: secret-memcmp
  return std::memcmp(mac, expect, 32) == 0;
}
