// Fixture: memset used as a key wipe. The compiler sees a dead store to a
// buffer whose lifetime ends and removes it — the key stays in memory.
#include <cstring>
#include <vector>

using Bytes = std::vector<unsigned char>;

Bytes Derive();
void Use(const Bytes& k);

void WipeWithMemset() {
  // The memset below is not a recognized wipe, so the local is flagged too.
  Bytes file_key = Derive();  // LINT-EXPECT: unzeroized-key-local
  Use(file_key);
  std::memset(file_key.data(), 0, file_key.size());  // LINT-EXPECT: memset-wipe
}

void WipeArrayWithMemset() {
  unsigned char master_secret[32];
  memset(master_secret, 0, sizeof(master_secret));  // LINT-EXPECT: memset-wipe
}
