// Fixture: libc RNG must be flagged even when seeded "carefully".
#include <cstdlib>

int NonceFromLibc() {
  // LINT-EXPECT: ban-rand
  // LINT-EXPECT: ban-rand
  srand(42);
  return rand();
}
