// Fixture: raw key material compared with short-circuiting primitives.
// raw-key-compare is the sharper subset of secret-eq/secret-memcmp — it
// fires only on *key*-named operands (key, secret, ikm, kek, prk, okm),
// where a constant-time compare is non-negotiable.
#include <cstring>
#include <vector>

using Bytes = std::vector<unsigned char>;

bool SameSessionKey(const Bytes& session_key, const Bytes& peer_key) {
  // LINT-EXPECT: secret-eq
  // LINT-EXPECT: raw-key-compare
  // LINT-EXPECT: secret-compare
  return session_key == peer_key;
}

bool SameKek(const unsigned char* kek_bytes, const unsigned char* expected) {
  // LINT-EXPECT: secret-memcmp
  // LINT-EXPECT: raw-key-compare
  // LINT-EXPECT: secret-compare
  return std::memcmp(kek_bytes, expected, 32) == 0;
}
