// Fixture: vector operator== short-circuits; flag it on secret-named buffers.
#include <vector>

using Bytes = std::vector<unsigned char>;

bool CheckTag(const Bytes& mac_tag, const Bytes& expected_mac) {
  // LINT-EXPECT: secret-eq
  return mac_tag == expected_mac;
}

bool CheckKey(const Bytes& file_key, const Bytes& derived) {
  // LINT-EXPECT: secret-eq
  // LINT-EXPECT: raw-key-compare
  // LINT-EXPECT: secret-compare
  if (file_key != derived) return false;
  return true;
}
