// Fixture: short-circuiting comparison of secret-named buffers. Both lints
// fire here: crypto_lint's secret-eq/secret-memcmp and taint_lint's
// secret-compare (each self-test filters the markers to its own rules).
#include <cstring>
#include <vector>

using Bytes = std::vector<unsigned char>;

bool SameKey(const Bytes& file_key, const Bytes& derived) {
  // LINT-EXPECT: secret-eq
  // LINT-EXPECT: raw-key-compare
  // LINT-EXPECT: secret-compare
  if (file_key != derived) return false;
  // LINT-EXPECT: secret-memcmp
  // LINT-EXPECT: raw-key-compare
  // LINT-EXPECT: secret-compare
  return std::memcmp(file_key.data(), derived.data(), 32) == 0;
}
