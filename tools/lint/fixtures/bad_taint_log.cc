// Fixture: key material reaching logging sinks.
#include <cstdio>
#include <iostream>
#include <vector>

using Bytes = std::vector<unsigned char>;

void Debug(const Bytes& mle_key, const char* wrap_secret_hex) {
  // LINT-EXPECT: secret-log
  std::printf("%02x\n", mle_key[0]);
  // LINT-EXPECT: secret-log
  std::cout << wrap_secret_hex;
}
