// Fixture: secret-named identifiers passed straight to Writer methods —
// secrets cross the wire only through an audited reed::Declassify call.
#include <vector>

using Bytes = std::vector<unsigned char>;

struct Writer {
  void Blob(const Bytes& b);
  void Raw(const Bytes& b);
};

void Upload(Writer& w, const Bytes& file_key, const Bytes& stub_data) {
  // LINT-EXPECT: secret-to-wire
  w.Blob(file_key);
  // LINT-EXPECT: secret-to-wire
  w.Raw(stub_data);
}
