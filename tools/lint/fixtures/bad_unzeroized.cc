// Fixture: a key-typed local that dies without zeroization.
#include <vector>

using Bytes = std::vector<unsigned char>;

Bytes Derive();
void Use(const Bytes& k);

void EncryptOnce() {
  // LINT-EXPECT: unzeroized-key-local
  Bytes file_key = Derive();
  Use(file_key);
}
