// Fixture: catch(...) that drops the exception without rethrowing or
// capturing the exception_ptr.
bool TryLoad();

bool LoadOrDefault() {
  // LINT-EXPECT: catch-all-swallow
  try {
    return TryLoad();
  } catch (...) {
    return false;
  }
}
