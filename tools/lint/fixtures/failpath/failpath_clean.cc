// Clean fixture: every pattern here is the sanctioned way to fail, handle,
// or swallow — failpath_lint.py must report nothing.
#include <exception>
#include <stdexcept>
#include <string>

struct Error {
  explicit Error(std::string m) : msg(std::move(m)) {}
  const char* what() const { return msg.c_str(); }
  std::string msg;
};
struct StoreError : Error {
  using Error::Error;
};
struct Counter {
  void Increment() {}
};
struct Gauge {
  void Add(long d) { v += d; }
  long v = 0;
};
// RAII guard: the sanctioned way to track in-flight work across throws.
struct GaugeGuard {
  explicit GaugeGuard(Gauge& g) : g_(&g) { g_->Add(1); }
  ~GaugeGuard() {
    if (g_) g_->Add(-1);
  }
  Gauge* g_;
};

// Typed throws: reed error types only.
void Validate(bool ok) {
  if (!ok) throw Error("validate failed");
}
void Persist(bool ok) {
  if (!ok) throw StoreError("persist failed");
}

// throw; rethrow is always fine, including the conditional failover shape
// (swallow intermediate replicas, rethrow the last — and count the masked
// ones so the swallow stays observable).
int CallWithFailover(int replicas, Counter& swallowed) {
  for (int i = 0; i < replicas; ++i) {
    try {
      Validate(i == replicas - 1);
      return i;
    } catch (const Error&) {
      if (i + 1 == replicas) throw;
      swallowed.Increment();
    }
  }
  return -1;
}

// catch(...) that captures the exception_ptr: handled, not a swallow.
std::exception_ptr Capture() {
  std::exception_ptr first;
  try {
    Validate(false);
  } catch (...) {
    if (!first) first = std::current_exception();
  }
  return first;
}

// catch(...) that rethrows after cleanup: handled.
void CleanupThenRethrow(Gauge& g) {
  GaugeGuard inflight(g);
  try {
    Persist(false);
  } catch (...) {
    g.v = 0;
    throw;
  }
}

// Named typed catch that examines what it caught: handled.
std::string Describe() {
  try {
    Validate(false);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

// A dtor and a noexcept function with no throw in sight.
struct Session {
  ~Session() { ++closed; }
  void Reset() noexcept { closed = 0; }
  int closed = 0;
};
