// Fixture: catches with empty bodies — the error is not even counted.
#include <string>

struct NetError {
  explicit NetError(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

void Poll();

void IgnoreEverything() {
  // LINT-EXPECT: empty-catch
  try {
    Poll();
  } catch (...) {
  }
}

void IgnoreNetErrors() {
  // LINT-EXPECT: empty-catch
  try {
    Poll();
  } catch (const NetError&) {
  }
}
