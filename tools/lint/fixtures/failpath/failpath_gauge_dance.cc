// Fixture: the manual raise/try/lower gauge dance — leaks the gauge on any
// exit path the author forgot; obs::GaugeGuard is the sanctioned pattern.
struct Gauge {
  void Add(long d) { v += d; }
  long v = 0;
};

void Transfer(Gauge& inflight);

void Call(Gauge& inflight) {
  inflight.Add(1);
  // LINT-EXPECT: gauge-dance
  try {
    Transfer(inflight);
  } catch (...) {
    inflight.Add(-1);
    throw;
  }
  inflight.Add(-1);
}
