// Fixture: throws whose operand is not a reed error type.
#include <stdexcept>
#include <string>

struct Error {
  explicit Error(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

void Load(bool ok) {
  // LINT-EXPECT: raw-throw
  if (!ok) throw std::runtime_error("untyped failure escapes the taxonomy");
}

void Rewrap() {
  try {
    Load(false);
  } catch (const Error& e) {
    // LINT-EXPECT: raw-throw  (throw e; slices — use `throw;`)
    throw e;
  }
}
