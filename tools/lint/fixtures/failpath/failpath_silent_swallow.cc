// Fixture: typed catches that neither rethrow nor examine the error.
#include <string>

struct Error {
  explicit Error(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

void Probe();
int drops = 0;

void SwallowUnnamed() {
  // LINT-EXPECT: silent-swallow  (clause binds no name)
  try {
    Probe();
  } catch (const Error&) {
    ++drops;
  }
}

void SwallowNamedButUnused() {
  // LINT-EXPECT: silent-swallow  (bound name never examined)
  try {
    Probe();
  } catch (const Error& err) {
    ++drops;
  }
}
