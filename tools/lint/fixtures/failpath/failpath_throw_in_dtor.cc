// Fixture: a throw inside a destructor — std::terminate during any unwind.
#include <string>

struct StoreError {
  explicit StoreError(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

struct Flusher {
  // LINT-EXPECT: throw-in-dtor
  ~Flusher() {
    if (dirty) throw StoreError("flush failed in dtor");
  }
  bool dirty = false;
};
