// Fixture: a throw inside a noexcept function — std::terminate at runtime.
#include <string>

struct Error {
  explicit Error(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

struct Pool {
  // LINT-EXPECT: throw-in-noexcept
  void Shrink(int n) noexcept {
    if (n < 0) throw Error("negative shrink");
    size -= n;
  }
  int size = 0;
};
