// Fixture: hygienic secret handling — nothing here may be flagged.
// Mentions of rand() and memcmp() in comments and "rand() strings" are fine.
#include <cstring>
#include <utility>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace reed {
bool SecureCompare(const Bytes& a, const Bytes& b);
void SecureZero(Bytes& b);
class ScopedWipe {
 public:
  explicit ScopedWipe(Bytes& b) : b_(b) {}
  ~ScopedWipe();

 private:
  Bytes& b_;
};
}  // namespace reed

Bytes Derive();
void Use(const Bytes& k);
Bytes Consume(Bytes k);

bool CheckTag(const Bytes& mac, const Bytes& expect) {
  return reed::SecureCompare(mac, expect);
}

// Raw key material compared the constant-time way — never flagged.
bool SameSessionKey(const Bytes& session_key, const Bytes& peer_key) {
  return reed::SecureCompare(session_key, peer_key);
}

// Scalar attributes of secrets compare freely.
bool SameLength(const Bytes& mac, const Bytes& key) {
  return mac.size() == key.size() && !key.empty();
}

void WipedKey() {
  Bytes file_key = Derive();
  reed::ScopedWipe wipe(file_key);
  Use(file_key);
}

void ZeroedKey() {
  Bytes session_key = Derive();
  Use(session_key);
  reed::SecureZero(session_key);
}

Bytes ReturnedKey() {
  Bytes mle_key = Derive();
  return mle_key;
}

Bytes MovedKey() {
  Bytes chunk_key = Derive();
  return Consume(std::move(chunk_key));
}

// Non-owning reference to a key is the caller's responsibility.
void BorrowedKey(Bytes& stub) {
  const Bytes& wrap_key = stub;
  Use(wrap_key);
}

// Benign names: versions, sizes, ids.
int KeyVersionMath(int key_version, int key_count) {
  return key_version == key_count ? 1 : 0;
}

// memset on a non-secret buffer is ordinary initialization, not a wipe.
void ZeroScratch() {
  unsigned char frame_header[16];
  std::memset(frame_header, 0, sizeof(frame_header));
  Use(Bytes(frame_header, frame_header + sizeof(frame_header)));
}
