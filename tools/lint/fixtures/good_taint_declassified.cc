// Fixture: sanctioned wire crossing — the Declassify call makes the flow
// greppable and audited, so the sink is clean. Scalar projections of
// secret-named identifiers (size/empty) never taint a sink either.
#include <cstdio>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace reed {
class Secret;
Bytes Declassify(const Secret& secret, const char* reason);
}  // namespace reed

struct Writer {
  void Blob(const Bytes& b);
};

void Upload(Writer& w, const reed::Secret& stub_blob) {
  w.Blob(reed::Declassify(stub_blob, "stub-file ciphertext upload"));
}

void Report(const Bytes& stub_data) {
  std::printf("%zu\n", stub_data.size());
}
