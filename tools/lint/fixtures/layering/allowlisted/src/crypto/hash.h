// Fixture: same upward edge as the `upward` case, suppressed by the
// per-case allowlist.txt.
#pragma once
#include "rsa/keys.h"
