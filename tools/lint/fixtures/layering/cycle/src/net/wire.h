// Fixture: net(2) -> store(3) is an upward edge, and with store/loc.h it
// closes a module cycle.
#pragma once
#include "store/loc.h"
