// Fixture: store(3) -> net(2) is fine on its own; the cycle is the bug.
#pragma once
#include "net/wire.h"
