// Fixture: aont(2) is a sanctioned ExposeForCrypto module — not flagged.
#pragma once
#include "util/secret.h"

inline void Seal(const reed::Secret& mle_key) {
  (void)mle_key.ExposeForCrypto();
}
