// Fixture: client(4) unwraps a Secret with ExposeForCrypto — only the
// crypto-layer modules (util, crypto, aont, rsa, abe) may do that.
#pragma once
#include "util/secret.h"

inline void Upload(const reed::Secret& file_key) {
  (void)file_key.ExposeForCrypto();
}
