// Fixture: sanctioned intra-layer edge chunk(1) -> crypto(1).
#pragma once
#include "crypto/hash.h"
#include "util/helpers.h"
