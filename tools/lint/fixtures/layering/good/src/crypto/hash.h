// Fixture: downward edge crypto(1) -> util(0).
#pragma once
#include "util/helpers.h"
