// Fixture: downward edges store(3) -> chunk(1)/crypto(1).
#pragma once
#include "chunk/chunker.h"
#include "crypto/hash.h"
