// Fixture: layer-0 module with no dependencies.
#pragma once
