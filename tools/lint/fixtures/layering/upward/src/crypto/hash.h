// Fixture: crypto(1) -> rsa(2) is an upward edge.
#pragma once
#include "rsa/keys.h"
