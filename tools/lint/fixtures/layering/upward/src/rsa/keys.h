// Fixture: layer-2 module.
#pragma once
