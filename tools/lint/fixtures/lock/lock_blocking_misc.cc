// Fixture: the non-RPC blocking families — pool joins, sleeps, file I/O,
// and a Declassify-gated wire write — all inside lexical lock scopes.
#include <chrono>
#include <fstream>
#include <future>
#include <thread>

#include "util/thread_annotations.h"

namespace {

struct FakePool {
  std::future<int> Submit(int v) {
    std::promise<int> p;
    p.set_value(v);
    return p.get_future();
  }
};

int Declassify(int v) { return v; }  // stand-in for reed::Declassify

class BadWorker {
 public:
  int JoinUnderLock() {
    reed::MutexLock lock(mu_);
    return pool_.Submit(1).get();  // LINT-EXPECT: blocking-under-lock
  }

  int JoinFutureUnderLock(std::future<int>& fut) {
    reed::MutexLock lock(mu_);
    return fut.get();  // LINT-EXPECT: blocking-under-lock
  }

  void SleepUnderLock() {
    std::lock_guard<reed::Mutex> lock(mu_);
    std::this_thread::sleep_for(  // LINT-EXPECT: blocking-under-lock
        std::chrono::milliseconds(1));
  }

  void WriteUnderLock(int v) {
    reed::MutexLock lock(mu_);
    std::ofstream out("state.dat");  // LINT-EXPECT: blocking-under-lock
    out << v;
  }

  int PublishUnderLock(int v) {
    reed::MutexLock lock(mu_);
    return Declassify(v);  // LINT-EXPECT: blocking-under-lock
  }

 private:
  reed::Mutex mu_{reed::LockRank::kNetLink};
  FakePool pool_;
};

}  // namespace

int main() {
  BadWorker w;
  std::future<int> f;
  w.SleepUnderLock();
  w.WriteUnderLock(2);
  return w.JoinUnderLock() + w.JoinFutureUnderLock(f) + w.PublishUnderLock(3);
}
