// Fixture: wire round-trips under an ordinary mutex guard. Every peer of
// this lock now queues behind an unbounded network wait — the pattern
// IoSerialMutex exists to make explicit (and safe, via its leaf rank).
#include "util/thread_annotations.h"

namespace {

struct FakeChannel {
  int Call(int req) { return req; }
};

struct FakeTransport {
  void Send(int) {}
  int Receive() { return 0; }
};

class BadProxy {
 public:
  int Forward(int req) {
    reed::MutexLock lock(mu_);
    return channel_.Call(req);  // LINT-EXPECT: blocking-under-lock
  }

  int Exchange(int frame) {
    reed::MutexLock lock(mu_);
    transport_.Send(frame);      // LINT-EXPECT: blocking-under-lock
    return transport_.Receive(); // LINT-EXPECT: blocking-under-lock
  }

 private:
  reed::Mutex mu_{reed::LockRank::kNetLink};
  FakeChannel channel_ REED_GUARDED_BY(mu_);
  FakeTransport transport_ REED_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  BadProxy p;
  return p.Forward(0) + p.Exchange(0);
}
