// Fixture: correct lock discipline — every mutex ranked, no blocking under
// a guard, predicate-form condvar waits, and wire I/O only under the
// sanctioned IoSerialLock. lock_lint --self-test expects zero findings.
#include <fstream>

#include "util/thread_annotations.h"

namespace {

struct FakeTransport {
  void Send(int) {}
  int Receive() { return 0; }
};

class Channel {
 public:
  // Blocking Send/Receive under IoSerialLock is the sanctioned pattern:
  // the lock exists to serialize the exchange and is a ranked leaf.
  int Exchange(int frame) {
    reed::IoSerialLock lock(mu_);
    transport_.Send(frame);
    return transport_.Receive();
  }

 private:
  reed::IoSerialMutex mu_;
  FakeTransport transport_ REED_GUARDED_BY(mu_);
};

class Queue {
 public:
  void Push(int v) {
    {
      reed::MutexLock lock(mu_);
      value_ = v;
      ready_ = true;
    }
    cv_.NotifyOne();
  }

  int PopPredicate() {
    reed::MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REED_REQUIRES(mu_) { return ready_; });
    ready_ = false;
    return value_;
  }

  int PopLoop() {
    reed::MutexLock lock(mu_);
    while (!ready_) {
      cv_.Wait(mu_);
    }
    ready_ = false;
    return value_;
  }

  // Blocking work belongs outside the critical section.
  void Persist() {
    int copy = 0;
    {
      reed::MutexLock lock(mu_);
      copy = value_;
    }
    std::ofstream out("queue.dat");
    out << copy;
  }

 private:
  reed::Mutex mu_{reed::LockRank::kThreadPool};
  reed::CondVar cv_;
  bool ready_ REED_GUARDED_BY(mu_) = false;
  int value_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Channel ch;
  Queue q;
  q.Push(ch.Exchange(1));
  q.Persist();
  return q.PopPredicate();
}
