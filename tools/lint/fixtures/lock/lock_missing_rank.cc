// Fixture: mutex declarations with no LockRank. Unranked locks opt out of
// the rank-order half of REED_DEADLOCK_DETECT; every lock in src/ declares
// its rank at the declaration site (util/lock_rank.h).
#include <array>

#include "util/thread_annotations.h"

namespace {

class Unranked {
 public:
  void Touch() {
    reed::MutexLock lock(mu_);
    ++value_;
  }

 private:
  reed::Mutex mu_;  // LINT-EXPECT: missing-rank
  mutable reed::SharedMutex smu_;  // LINT-EXPECT: missing-rank
  // Array elements default-construct, so a raw mutex array cannot carry a
  // rank; wrap the element in a struct with a ranked default initializer.
  std::array<reed::Mutex, 4> stripes_;  // LINT-EXPECT: missing-rank
  int value_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Unranked u;
  u.Touch();
  return 0;
}
