// Fixture: single-argument CondVar::Wait with no predicate loop. A
// spurious wakeup (or a notify that lands between the test and the wait)
// leaves ready_ false and the caller proceeds on stale state — the classic
// lost-wakeup bug. Wait(mu, pred) or while(!pred) is the rule.
#include "util/thread_annotations.h"

namespace {

class BadQueue {
 public:
  int Pop() {
    reed::MutexLock lock(mu_);
    if (!ready_) {
      cv_.Wait(mu_);  // LINT-EXPECT: condvar-wait-loop
    }
    ready_ = false;
    return value_;
  }

  void Push(int v) {
    {
      reed::MutexLock lock(mu_);
      value_ = v;
      ready_ = true;
    }
    cv_.NotifyOne();
  }

 private:
  reed::Mutex mu_{reed::LockRank::kThreadPool};
  reed::CondVar cv_;
  bool ready_ REED_GUARDED_BY(mu_) = false;
  int value_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BadQueue q;
  q.Push(7);
  return q.Pop();
}
