// Fixture generator paired with clean/reed_client.h.
const OpSpec kOpTable[] = {
    {"Upload", OpKind::kUpload, 30},
    {"Download", OpKind::kDownload, 30},
    {"Rekey", OpKind::kRekey, 20},
};
