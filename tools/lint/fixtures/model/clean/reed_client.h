// Fixture: fully covered client surface — every public op is either in the
// generator's op table or a marked observer. Expect no findings.
namespace client {

class ReedClient {
 public:
  explicit ReedClient(int x);

  void Upload(const char* file_id);
  void Download(const char* file_id);
  void Rekey(const char* file_id);

  int InspectKeyState(const char* file_id);  // model-observable

  int user_id() const;  // lowercase accessor: out of lint scope

 private:
  void Helper(int y);  // private: out of lint scope
};

}  // namespace client
