// Fixture generator paired with double-classified/reed_client.h.
const OpSpec kOpTable[] = {
    {"Upload", OpKind::kUpload, 30},
    {"Rekey", OpKind::kRekey, 20},
};
