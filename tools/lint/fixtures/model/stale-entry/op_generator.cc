// Fixture generator paired with stale-entry/reed_client.h.
const OpSpec kOpTable[] = {
    {"Upload", OpKind::kUpload, 30},
    {"Restore", OpKind::kRestore, 10},  // LINT-EXPECT: op-table-stale
};
