// Fixture: the generator's table still names an op that was renamed away —
// the claimed coverage is air. The finding lands on op_generator.cc.
namespace client {

class ReedClient {
 public:
  void Upload(const char* file_id);
};

}  // namespace client
