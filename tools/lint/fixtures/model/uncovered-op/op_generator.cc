// Fixture generator paired with uncovered-op/reed_client.h: Purge missing.
const OpSpec kOpTable[] = {
    {"Upload", OpKind::kUpload, 30},
};
