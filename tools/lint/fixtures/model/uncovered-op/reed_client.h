// Fixture: Purge is a public client op that the generator never drives and
// that carries no model-observable marker — unchecked surface.
namespace client {

class ReedClient {
 public:
  void Upload(const char* file_id);
  void Purge(const char* file_id);  // LINT-EXPECT: op-coverage
};

}  // namespace client
