// Fixture: the Secret type wall, used correctly — this TU must compile.
// Declassify (with a reason) is the only door to the wire, and comparisons
// go through ConstantTimeEquals. Compiled with -fsyntax-only against src/.
#include "net/wire.h"
#include "util/secret.h"

namespace {

reed::Bytes UploadStub(const reed::Secret& stub_blob) {
  reed::net::Writer w;
  w.U8(1);
  w.Blob(reed::Declassify(stub_blob, "fixture: sanctioned stub upload"));
  return w.Take();
}

bool SameKey(const reed::Secret& file_key, const reed::Secret& derived) {
  return file_key.ConstantTimeEquals(derived);
}

}  // namespace

int main() {
  reed::Secret file_key(reed::Bytes(32, 0x2a));
  return SameKey(file_key, file_key) && !UploadStub(file_key).empty() ? 0 : 1;
}
