// Fixture: a Secret streamed to a log. The deleted operator<< template in
// util/secret.h must make this TU fail to compile (the ctest registers it
// WILL_FAIL). taint_lint flags the same flow textually, hence the marker.
#include <iostream>

#include "util/secret.h"

void Debug(const reed::Secret& mle_key) {
  // LINT-EXPECT: secret-log
  std::cout << mle_key << "\n";
}
