// Fixture: a Secret passed straight to the wire serializer. The deleted
// Writer::Blob(const Secret&) overload must make this TU fail to compile
// (the ctest registers it WILL_FAIL). taint_lint flags the same flow
// textually, hence the marker below.
#include "net/wire.h"
#include "util/secret.h"

reed::Bytes Leak(const reed::Secret& file_key) {
  reed::net::Writer w;
  // LINT-EXPECT: secret-to-wire
  w.Blob(file_key);
  return w.Take();
}
