// Fixture: correct lock discipline. Must compile cleanly under
//   clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety
// (ctest: tsa_annotation_clean, registered when clang++ is available).
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    reed::MutexLock lock(mu_);
    ++value_;
  }

  int Get() {
    reed::MutexLock lock(mu_);
    return value_;
  }

  // Caller holds the lock; the annotation makes that contract checkable.
  int GetLocked() REED_REQUIRES(mu_) { return value_; }

 private:
  reed::Mutex mu_;
  int value_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
