// Fixture: NEGATIVE compile test — accesses a guarded member without its
// mutex. clang -Wthread-safety -Werror=thread-safety must REJECT this file;
// the ctest entry (tsa_annotation_violation) is registered WILL_FAIL. If this
// ever compiles under the TSA flags, the annotation shim is broken (e.g. the
// macros expand to nothing under clang).
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): touches value_ with mu_ not held.
  void Increment() { ++value_; }

 private:
  reed::Mutex mu_;
  int value_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
