#!/usr/bin/env python3
"""Module-layering lint for REED sources.

Parses `#include "module/..."` edges under src/ and enforces the DESIGN.md §2
module DAG — the normative layering statement for the tree:

    layer 0   util
    layer 1   crypto  bigint  chunk
    layer 2   rsa  pairing  aont  net
    layer 3   abe  keymanager  store
    layer 4   server  client
    layer 5   core
    leaf      trace   (may include lower layers; nothing may include it)

A module may include modules in strictly lower layers. Three same-layer edges
are part of the sanctioned DAG (bigint→crypto and chunk→crypto: both sit on
util but bigint/chunk consume hashing; client→server: the client drives
in-process servers directly in library mode); any other same-layer or upward
edge is a finding, as is any cycle and any edge into the `trace` leaf.

Rules:
  upward-edge      include of a higher-layer module, or a same-layer module
                   outside INTRA_LAYER_EDGES
  leaf-dependency  some module includes trace/ — trace is a terminal consumer
  unknown-module   quoted include whose first path component is not a module
                   (new modules must be added to LAYERS here and DESIGN.md §2)
  include-cycle    the module graph has a cycle (reported once per cycle)
  secret-expose    Secret::ExposeForCrypto() called outside the crypto layers
                   (util, crypto, aont, rsa, abe) — only cipher/KDF/bignum
                   kernels may unwrap a reed::Secret; everything above must
                   pass Secrets along or go through reed::Declassify

Findings are module-edge granular. Audited exceptions go in the allowlist
file (default: tools/lint/layering_allowlist.txt) as `<rule>:<src>-><dst>`
lines (`include-cycle:a->b->a` for cycles). The tree is expected to pass with
an EMPTY allowlist — an entry is a temporary, dated concession.

Usage:
  layering_lint.py [--root REPO] [--allowlist FILE] [PATHS...]  # lint (default: src)
  layering_lint.py --self-test                                  # run fixture suite
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crypto_lint import strip_comments_and_strings  # noqa: E402

LAYERS = {
    "util": 0,
    "crypto": 1, "bigint": 1, "chunk": 1, "obs": 1,
    "rsa": 2, "pairing": 2, "aont": 2, "net": 2,
    "abe": 3, "keymanager": 3, "store": 3,
    "server": 4, "client": 4,
    "core": 5,
    "trace": 5,
}

# Modules nothing inside src/ may depend on.
LEAF_MODULES = {"trace"}

# Same-layer edges that are part of the sanctioned DAG (see module map above).
INTRA_LAYER_EDGES = {
    ("bigint", "crypto"),
    ("chunk", "crypto"),
    ("client", "server"),
}

# Modules allowed to call Secret::ExposeForCrypto — the cipher/KDF/bignum
# kernels plus util (secret.h defines it). Everyone else passes Secrets
# along intact or crosses the wire via reed::Declassify.
SECRET_EXPOSE_MODULES = {"util", "crypto", "aont", "rsa", "abe"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
EXPOSE_RE = re.compile(r"\bExposeForCrypto\s*\(")


class Finding:
    def __init__(self, path, line, rule, edge, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.edge = edge  # "src->dst" (or "a->b->a" for cycles)
        self.message = message

    def key(self):
        return f"{self.rule}:{self.edge}"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def collect_sources(root, paths):
    files = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        if not os.path.isdir(full):
            # A typo'd path silently scanning zero files would report clean.
            raise SystemExit(f"layering_lint: path does not exist: {full}")
        for dirpath, _, names in os.walk(full):
            for n in sorted(names):
                if n.endswith((".cc", ".cpp", ".h", ".hpp")):
                    files.append(os.path.join(dirpath, n))
    return sorted(files)


def module_of(rel_to_src):
    parts = rel_to_src.split(os.sep)
    return parts[0] if len(parts) > 1 else None


def scan_edges(root, src_prefix, files):
    """Returns (edges, findings) where edges maps (src_mod, dst_mod) to the
    first (path, line) evidencing it. unknown-module findings are emitted
    here; graph rules run on the edge set afterwards."""
    edges = {}
    findings = []
    src_root = os.path.join(root, src_prefix)
    for full in files:
        rel = os.path.relpath(full, root)
        rel_src = os.path.relpath(full, src_root)
        src_mod = module_of(rel_src)
        if src_mod is None or src_mod not in LAYERS:
            # File outside any module directory (or an unknown one): flag the
            # file itself once via its includes below; still scan them.
            pass
        with open(full, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, start=1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1)
                if "/" not in target:
                    continue  # same-directory include, no module edge
                dst_mod = target.split("/")[0]
                if dst_mod not in LAYERS:
                    findings.append(Finding(
                        rel, lineno, "unknown-module",
                        f"{src_mod or '?'}->{dst_mod}",
                        f'include "{target}" names unknown module '
                        f"`{dst_mod}` — add it to LAYERS in layering_lint.py "
                        "and DESIGN.md §2, or fix the path"))
                    continue
                if src_mod is None or src_mod not in LAYERS:
                    continue
                if dst_mod == src_mod:
                    continue
                edges.setdefault((src_mod, dst_mod), (rel, lineno))
    return edges, findings


def scan_expose(root, src_prefix, files):
    """Flags ExposeForCrypto() calls in modules outside the crypto layers."""
    findings = []
    src_root = os.path.join(root, src_prefix)
    for full in files:
        rel = os.path.relpath(full, root)
        src_mod = module_of(os.path.relpath(full, src_root))
        if src_mod is None or src_mod in SECRET_EXPOSE_MODULES:
            continue
        with open(full, encoding="utf-8", errors="replace") as f:
            code = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(code.split("\n"), start=1):
            if EXPOSE_RE.search(line):
                findings.append(Finding(
                    rel, lineno, "secret-expose", src_mod,
                    f"`{src_mod}` calls Secret::ExposeForCrypto — only "
                    "crypto-layer modules "
                    f"({', '.join(sorted(SECRET_EXPOSE_MODULES))}) may "
                    "unwrap a Secret; pass it along or use reed::Declassify"))
    return findings


def check_edges(edges):
    findings = []
    for (src, dst), (path, lineno) in sorted(edges.items()):
        if dst in LEAF_MODULES:
            findings.append(Finding(
                path, lineno, "leaf-dependency", f"{src}->{dst}",
                f"`{src}` includes leaf module `{dst}` — {dst} consumes the "
                "tree, nothing may depend on it"))
            continue
        ls, ld = LAYERS[src], LAYERS[dst]
        if ld > ls:
            findings.append(Finding(
                path, lineno, "upward-edge", f"{src}->{dst}",
                f"`{src}` (layer {ls}) includes `{dst}` (layer {ld}) — "
                "upward edge violates the module DAG"))
        elif ld == ls and (src, dst) not in INTRA_LAYER_EDGES:
            findings.append(Finding(
                path, lineno, "upward-edge", f"{src}->{dst}",
                f"`{src}` and `{dst}` share layer {ls} and the edge is not "
                "in the sanctioned intra-layer set"))
    return findings


def find_cycles(edges):
    """Returns each elementary cycle once, canonicalized to start from its
    lexicographically smallest module. Iterative DFS keeps it simple; the
    module graph is tiny."""
    graph = {}
    for (src, dst) in edges:
        graph.setdefault(src, []).append(dst)
    cycles = set()

    def dfs(node, path, on_path):
        for nxt in sorted(graph.get(node, [])):
            if nxt in on_path:
                cyc = path[path.index(nxt):]
                pivot = cyc.index(min(cyc))
                cycles.add(tuple(cyc[pivot:] + cyc[:pivot]))
            else:
                dfs(nxt, path + [nxt], on_path | {nxt})

    for start in sorted(graph):
        dfs(start, [start], {start})

    findings = []
    for cyc in sorted(cycles):
        loop = "->".join(cyc + (cyc[0],))
        first_edge = (cyc[0], cyc[1 % len(cyc)])
        path, lineno = edges.get(first_edge, ("<graph>", 0))
        findings.append(Finding(
            path, lineno, "include-cycle", loop,
            f"module include cycle: {loop}"))
    return findings


def load_allowlist(path):
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries[line] = 0
    return entries


def lint_tree(root, paths, allowlist_path, src_prefix="src", quiet=False):
    files = collect_sources(root, paths)
    edges, findings = scan_edges(root, src_prefix, files)
    findings.extend(check_edges(edges))
    findings.extend(find_cycles(edges))
    findings.extend(scan_expose(root, src_prefix, files))

    allow = load_allowlist(allowlist_path)
    reported = []
    for finding in findings:
        if finding.key() in allow:
            allow[finding.key()] += 1
        else:
            reported.append(finding)

    if quiet:
        return reported
    for finding in reported:
        print(finding)
    for k, hits in allow.items():
        if hits == 0:
            print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"layering_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"layering_lint: clean — {len(edges)} module edge(s) conform "
          f"({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------

# Each fixture case is a mini source tree under fixtures/layering/<case>/src
# with an optional per-case allowlist.txt. Expected finding keys are exact.
EXPECTED = {
    "good": set(),
    "cycle": {"upward-edge:net->store", "include-cycle:net->store->net"},
    "upward": {"upward-edge:crypto->rsa"},
    "allowlisted": set(),
    "expose": {"secret-expose:client"},
}


def run_self_test(root):
    fixture_root = os.path.join(root, "tools", "lint", "fixtures", "layering")
    if not os.path.isdir(fixture_root):
        print(f"layering_lint --self-test: no fixtures under {fixture_root}")
        return 1
    failures = []
    cases = sorted(os.listdir(fixture_root))
    for case in cases:
        case_dir = os.path.join(fixture_root, case)
        if not os.path.isdir(case_dir):
            continue
        if case not in EXPECTED:
            failures.append(f"{case}: fixture directory has no EXPECTED entry")
            continue
        allowlist = os.path.join(case_dir, "allowlist.txt")
        reported = lint_tree(case_dir, ["src"], allowlist, quiet=True)
        got = {f.key() for f in reported}
        if got != EXPECTED[case]:
            failures.append(f"{case}: expected {sorted(EXPECTED[case]) or '[clean]'}, "
                            f"got {sorted(got) or '[clean]'}")
    missing = [c for c in EXPECTED if not os.path.isdir(os.path.join(fixture_root, c))]
    for c in missing:
        failures.append(f"{c}: expected fixture directory is missing")
    for f in failures:
        print("FAIL " + f)
    total = len(EXPECTED)
    print(f"layering_lint --self-test: {total - len(failures)}/{total} "
          "fixture cases pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint/"
                         "layering_allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture trees and check expectations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root (default: src)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(
        root, "tools", "lint", "layering_allowlist.txt")
    return lint_tree(root, args.paths or ["src"], allowlist)


if __name__ == "__main__":
    sys.exit(main())
