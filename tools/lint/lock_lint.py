#!/usr/bin/env python3
"""Lock-discipline lint for REED sources.

Complements the runtime deadlock detector (util/deadlock.h, built under
-DREED_DEADLOCK_DETECT=ON) with three static checks the detector cannot do —
it only sees schedules that actually run; this lint sees every line:

  blocking-under-lock   a blocking call — RPC round-trip (Call/Send/Receive),
                        simulated wire delay (Transfer), thread-pool joins
                        (Submit(...).get(), future.get(), ParallelFor),
                        sleeps, file I/O, or a Declassify-gated wire write —
                        inside a lexical MutexLock/WriterMutexLock/
                        ReaderMutexLock/ContendedMutexLock/ShardLock/
                        std::lock_guard scope. Holding a lock across
                        blocking serializes every peer behind an unbounded
                        wait. The ONE sanctioned pattern is IoSerialLock
                        over an IoSerialMutex (net/rpc.h TcpChannel): that
                        type exists precisely to serialize a request/
                        response exchange, is ranked as a leaf (kIoChannel),
                        and the runtime detector proves nothing is ever
                        acquired under it — so its guard is exempt here.

  condvar-wait-loop     the single-argument CondVar::Wait(mu) outside a
                        while/do loop. A bare wait misses spurious wakeups
                        and lost-wakeup races; use the predicate overload
                        Wait(mu, pred) — which loops internally — or wrap
                        the wait in a predicate loop.

  missing-rank          a reed::Mutex/SharedMutex declaration with no
                        LockRank (util/lock_rank.h), including raw
                        std::array<Mutex, N> (array elements default-
                        construct unranked — wrap the element in a struct
                        with a ranked default member initializer, as
                        StorageServer::IngestStripe does). Unranked locks
                        opt out of the rank-order half of deadlock
                        detection; every lock in src/ declares its rank at
                        the declaration site. IoSerialMutex carries its
                        rank intrinsically and needs no annotation.

The scope tracking is lexical (brace depth within one file), so a helper
that *requires* a lock held (REED_REQUIRES) but takes none itself is not
seen as locked — the runtime detector covers that half.

False positives that survive a manual audit go in the allowlist file
(default: tools/lint/lock_allowlist.txt) as `<relpath>:<rule>:<token>`
lines. The tree is expected to pass with an EMPTY allowlist.

Usage:
  lock_lint.py [--root REPO] [--allowlist FILE] [PATHS...]   # lint (default: src)
  lock_lint.py --self-test                                   # run fixture suite
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crypto_lint import (  # noqa: E402  (shared helpers, single source of truth)
    Finding,
    collect_files,
    load_allowlist,
    strip_comments_and_strings,
)

RULES = ("blocking-under-lock", "condvar-wait-loop", "missing-rank")

# RAII guards that mark a lexical critical section. IoSerialLock is absent
# by design: it is the sanctioned hold-across-blocking type (see module doc).
GUARD_RE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock|ContendedMutexLock|"
    r"ShardLock|std::lock_guard|std::scoped_lock|std::unique_lock)\b"
    r"\s*(?:<[^;>]*>)?\s+[A-Za-z_]\w*\s*[({]"
)

# (regex, token, message) triples for blocking-under-lock. Tokens keep
# allowlist keys stable and self-describing.
BLOCKING_PATTERNS = (
    (re.compile(r"(?:\.|->)\s*Call\s*\("), "rpc-call",
     "RPC round-trip while a lock is held"),
    (re.compile(r"(?:\.|->)\s*(?:Send|Receive)\s*\("), "wire-io",
     "wire send/receive while a lock is held"),
    (re.compile(r"(?:\.|->)\s*Transfer\s*\("), "link-transfer",
     "simulated link transfer (models wire delay) while a lock is held"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep",
     "sleep while a lock is held"),
    (re.compile(r"\bSubmit\s*\([^;]*\)\s*\.\s*get\s*\(\)"), "submit-get",
     "ThreadPool::Submit(...).get() joins a task while a lock is held"),
    (re.compile(r"\b[A-Za-z_]*fut(?:ure)?s?\w*(?:\[\w+\])?\s*\.\s*"
                r"(?:get|wait)\s*\(\)", re.IGNORECASE), "future-join",
     "future join while a lock is held"),
    (re.compile(r"\bParallelFor\s*\("), "parallel-for",
     "ParallelFor blocks until the pool drains; not under a lock"),
    (re.compile(r"\bstd::[io]?fstream\b|\bf(?:open|read|write)\s*\("),
     "file-io", "file I/O while a lock is held"),
    (re.compile(r"\bDeclassify\s*\("), "declassify",
     "Declassify-gated wire write staged while a lock is held"),
)

# Single-argument CondVar::Wait — no predicate, so the caller must supply
# the loop. The two-argument predicate overload never matches (comma).
BARE_WAIT_RE = re.compile(r"(?:\.|->)\s*Wait\s*\(\s*[A-Za-z_]\w*\s*\)")
LOOP_HEAD_RE = re.compile(r"\bwhile\s*\(|\bdo\b\s*\{?")

# Unranked declarations. \b keeps IoSerialMutex (intrinsic rank) out: there
# is no word boundary inside "IoSerialMutex". Brace/paren initializers that
# mention LockRank are the ranked (clean) form and fall through.
UNRANKED_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:reed::)?\b(Mutex|SharedMutex)\b"
    r"\s+([A-Za-z_]\w*)\s*(?:;|\{\s*\}\s*;)"
)
RAW_MUTEX_ARRAY_RE = re.compile(
    r"\bstd::array\s*<\s*(?:reed::)?(Mutex|SharedMutex)\b"
)


def lint_text(path, raw):
    text = strip_comments_and_strings(raw)
    findings = []
    lines = text.split("\n")

    depth = 0
    guards = []  # (decl_depth, lineno) — active lexical lock scopes
    for lineno, line in enumerate(lines, start=1):
        locked_here = bool(guards)

        if locked_here:
            if not BARE_WAIT_RE.search(line):  # Wait is rule 2's business
                for pattern, token, message in BLOCKING_PATTERNS:
                    if pattern.search(line):
                        findings.append(Finding(
                            path, lineno, "blocking-under-lock", token,
                            f"{message} (guard since line {guards[-1][1]}); "
                            "release first, or use IoSerialMutex/IoSerialLock "
                            "if serializing the wire is the point"))

        if BARE_WAIT_RE.search(line):
            # Predicate loops put the wait in a while/do body — accept a
            # loop head on the same line or within the three lines above.
            context = lines[max(0, lineno - 4):lineno]
            if not any(LOOP_HEAD_RE.search(c) for c in context):
                findings.append(Finding(
                    path, lineno, "condvar-wait-loop", "bare-wait",
                    "CondVar::Wait(mu) outside a predicate loop loses "
                    "wakeups; use Wait(mu, pred) or wrap in while(!pred)"))

        m = UNRANKED_DECL_RE.search(line)
        if m:
            findings.append(Finding(
                path, lineno, "missing-rank", m.group(2),
                f"{m.group(1)} {m.group(2)} declared without a LockRank "
                "(util/lock_rank.h); declare as "
                f"{m.group(1)} {m.group(2)}{{LockRank::k...}}"))
        m = RAW_MUTEX_ARRAY_RE.search(line)
        if m:
            findings.append(Finding(
                path, lineno, "missing-rank", "mutex-array",
                f"std::array<{m.group(1)}, N> elements default-construct "
                "unranked; wrap the element in a struct with a ranked "
                "default member initializer (see StorageServer::IngestStripe)"))

        # Character-level brace walk: a guard is registered at the depth of
        # its declaration point and dies with the brace that closes that
        # scope — this keeps one-line bodies like
        # `int Get() { MutexLock lock(mu_); return x; }` balanced.
        guard_positions = [m.start() for m in GUARD_RE.finditer(line)]
        gi = 0
        for pos, ch in enumerate(line):
            while gi < len(guard_positions) and guard_positions[gi] <= pos:
                guards.append((depth, lineno))
                gi += 1
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while guards and guards[-1][0] > depth:
                    guards.pop()
        while gi < len(guard_positions):
            guards.append((depth, lineno))
            gi += 1

    return findings


def run_lint(root, paths, allowlist_path):
    allow = load_allowlist(allowlist_path)
    reported = []
    for full in collect_files(root, paths):
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        for finding in lint_text(rel, raw):
            if finding.key() in allow:
                allow[finding.key()] += 1
            else:
                reported.append(finding)

    for finding in reported:
        print(finding)
    stale = [k for k, hits in allow.items() if hits == 0]
    for k in stale:
        print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"lock_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"lock_lint: clean ({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z\-]+)")


def run_self_test(root):
    # Dedicated fixture dir (like layering_lint): the shared fixture pool
    # contains unranked mutexes on purpose (tsa/ compiles them standalone).
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures", "lock")
    failures = []
    files = collect_files(root, [os.path.join("tools", "lint", "fixtures",
                                              "lock")])
    if not files:
        print(f"lock_lint --self-test: no fixtures under {fixture_dir}")
        return 1
    for full in files:
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        expected = sorted(r for r in EXPECT_RE.findall(raw) if r in RULES)
        got = sorted(f.rule for f in lint_text(rel, raw))
        if expected != got:
            failures.append(f"{rel}: expected {expected or '[clean]'}, "
                            f"got {got or '[clean]'}")
    for f in failures:
        print("FAIL " + f)
    print(f"lock_lint --self-test: {len(files) - len(failures)}/{len(files)} "
          "fixtures pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint/lock_allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture files and check expectations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root (default: src)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "lock_allowlist.txt")
    return run_lint(root, args.paths or ["src"], allowlist)


if __name__ == "__main__":
    sys.exit(main())
