#!/usr/bin/env python3
"""Op-coverage cross-check for the executable REED spec (DESIGN.md §11).

The model checker (tests/model/) only proves what it drives. This lint pins
the coverage contract in BOTH directions, the fault-manifest pattern applied
to the client API:

  op-coverage    every public CamelCase method of client::ReedClient must
                 either appear in the generator's op table
                 (kOpTable in tests/model/op_generator.cc) or carry a
                 `model-observable` marker comment on its declaration —
                 observers are how the checker looks at state, ops are what
                 it checks; a new client op cannot ship unchecked.

  op-table-stale an op-table entry naming no public ReedClient method: the
                 generator claims to cover an op that does not exist (e.g.
                 after a rename), so part of the "covered" surface is air.

  op-double      a method both in the op table and marked model-observable;
                 the two classifications are mutually exclusive, pick one.

Method extraction is lexical: CamelCase identifiers followed by `(` inside
the class's public sections, constructors excluded. Lowercase accessors
(user_id, options, ...) are out of scope by convention — they return
references to client-local configuration, not cloud state.

Usage:
  model_lint.py [--root REPO]            # check the real tree
  model_lint.py --root REPO --client-header H --generator G
                                         # check explicit files (fixtures)
  model_lint.py --self-test              # run fixture suite
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crypto_lint import (  # noqa: E402  (shared helpers, single source of truth)
    Finding,
    load_allowlist,
    strip_comments_and_strings,
)

RULES = ("op-coverage", "op-table-stale", "op-double")

CLIENT_HEADER_REL = os.path.join("src", "client", "reed_client.h")
GENERATOR_REL = os.path.join("tests", "model", "op_generator.cc")

CLASS_RE = re.compile(r"\bclass\s+ReedClient\b")
ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:", re.M)
METHOD_RE = re.compile(r"\b([A-Z]\w*)\s*\(")
MARKER = "model-observable"
OP_TABLE_RE = re.compile(r"\bkOpTable\s*\[\s*\]\s*=\s*\{")
OP_ENTRY_RE = re.compile(r'\{\s*"(\w+)"')

# Type-ish CamelCase tokens that precede `(` without being declarations
# (constructor calls, templates). Anything ending in these is skipped.
SKIP_NAMES = {"ReedClient"}


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


def public_regions(stripped):
    """(start, end) index pairs of the public sections of class ReedClient."""
    m = CLASS_RE.search(stripped)
    if not m:
        return []
    # Classes in this codebase end at the first `};` at column 0 after the
    # class head — good enough lexically, and the fixtures pin it.
    open_idx = stripped.index("{", m.end())
    end_m = re.compile(r"^\};", re.M).search(stripped, open_idx)
    class_end = end_m.start() if end_m else len(stripped)

    regions = []
    current = None  # start index of an open public region
    for am in ACCESS_RE.finditer(stripped, open_idx, class_end):
        if current is not None:
            regions.append((current, am.start()))
            current = None
        if am.group(1) == "public":
            current = am.end()
    if current is not None:
        regions.append((current, class_end))
    return regions


def public_methods(raw):
    """{name: (line, has_marker)} for public CamelCase methods."""
    stripped = strip_comments_and_strings(raw)
    marker_lines = {i + 1 for i, line in enumerate(raw.splitlines())
                    if MARKER in line}
    methods = {}
    for start, end in public_regions(stripped):
        for m in METHOD_RE.finditer(stripped, start, end):
            name = m.group(1)
            if name in SKIP_NAMES:
                continue
            semi = stripped.find(";", m.end())
            brace = stripped.find("{", m.end())
            # Inline bodies (`{ ... }`) end the declaration too; take the
            # nearer terminator so one decl never swallows the next.
            decl_end = min(x for x in (semi, brace, end) if x != -1)
            first, last = line_of(stripped, m.start()), line_of(stripped,
                                                                decl_end)
            has_marker = any(first <= ln <= last for ln in marker_lines)
            if name not in methods:
                methods[name] = (first, has_marker)
    return methods


def op_table(raw):
    """{name: line} for kOpTable entries in the generator source."""
    m = OP_TABLE_RE.search(raw)
    if not m:
        return None
    end = raw.find("};", m.end())
    block = raw[m.end():end if end != -1 else len(raw)]
    return {em.group(1): line_of(raw, m.end() + em.start())
            for em in OP_ENTRY_RE.finditer(block)}


def check(root, client_header_rel, generator_rel):
    findings = []
    header_path = os.path.join(root, client_header_rel)
    generator_path = os.path.join(root, generator_rel)
    for path, rel in ((header_path, client_header_rel),
                      (generator_path, generator_rel)):
        if not os.path.exists(path):
            return [Finding(rel, 1, "op-coverage", "missing",
                            f"{rel} not found")]
    with open(header_path, encoding="utf-8", errors="replace") as f:
        header_raw = f.read()
    with open(generator_path, encoding="utf-8", errors="replace") as f:
        generator_raw = f.read()

    methods = public_methods(header_raw)
    table = op_table(generator_raw)
    if table is None:
        return [Finding(generator_rel, 1, "op-table-stale", "kOpTable",
                        "no kOpTable[] block found in the generator")]

    for name, (lineno, has_marker) in sorted(methods.items()):
        if name in table and has_marker:
            findings.append(Finding(
                client_header_rel, lineno, "op-double", name,
                f"{name} is both in kOpTable and marked {MARKER}; an "
                "operation is either generated-and-diffed or a read-only "
                "observer, not both"))
        elif name not in table and not has_marker:
            findings.append(Finding(
                client_header_rel, lineno, "op-coverage", name,
                f"public client op {name} is neither generated by the model "
                f"checker (kOpTable in {GENERATOR_REL}) nor marked "
                f"`{MARKER}`; a client operation the checker never drives "
                "is unchecked surface"))
    for name, lineno in sorted(table.items()):
        if name not in methods:
            findings.append(Finding(
                generator_rel, lineno, "op-table-stale", name,
                f"kOpTable entry \"{name}\" matches no public ReedClient "
                "method; the generator claims coverage of an op that does "
                "not exist"))
    return findings


def run_lint(root, client_header, generator, allowlist_path):
    allow = load_allowlist(allowlist_path)
    reported = []
    for finding in check(root, client_header, generator):
        if finding.key() in allow:
            allow[finding.key()] += 1
        else:
            reported.append(finding)
    for finding in reported:
        print(finding)
    stale = [k for k, hits in allow.items() if hits == 0]
    for k in stale:
        print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"model_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"model_lint: clean ({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------
#
# Each fixture case is a DIRECTORY under tools/lint/fixtures/model/ holding a
# reed_client.h + op_generator.cc pair (the lint is a cross-file check, so
# single-file fixtures cannot express it). Expected rules are LINT-EXPECT
# annotations in either file of the pair.

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z\-]+)")


def run_self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures", "model")
    if not os.path.isdir(fixture_dir):
        print(f"model_lint --self-test: no fixtures under {fixture_dir}")
        return 1
    cases = sorted(d for d in os.listdir(fixture_dir)
                   if os.path.isdir(os.path.join(fixture_dir, d)))
    if not cases:
        print(f"model_lint --self-test: no fixture cases under {fixture_dir}")
        return 1
    failures = []
    for case in cases:
        case_rel = os.path.join("tools", "lint", "fixtures", "model", case)
        header_rel = os.path.join(case_rel, "reed_client.h")
        generator_rel = os.path.join(case_rel, "op_generator.cc")
        expected = []
        for rel in (header_rel, generator_rel):
            path = os.path.join(root, rel)
            if os.path.exists(path):
                with open(path, encoding="utf-8") as f:
                    expected.extend(r for r in EXPECT_RE.findall(f.read())
                                    if r in RULES)
        got = sorted(f.rule for f in check(root, header_rel, generator_rel))
        if sorted(expected) != got:
            failures.append(f"{case_rel}: expected "
                            f"{sorted(expected) or '[clean]'}, "
                            f"got {got or '[clean]'}")
    for f in failures:
        print("FAIL " + f)
    print(f"model_lint --self-test: {len(cases) - len(failures)}/"
          f"{len(cases)} fixture cases pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--client-header", default=CLIENT_HEADER_REL,
                    help="client header relative to --root")
    ap.add_argument("--generator", default=GENERATOR_REL,
                    help="op-generator source relative to --root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file "
                         "(default: tools/lint/model_allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture pairs and check expectations")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "model_allowlist.txt")
    return run_lint(root, args.client_header, args.generator, allowlist)


if __name__ == "__main__":
    sys.exit(main())
