#!/usr/bin/env python3
"""Secret information-flow lint for REED sources.

Complements the compile-time `reed::Secret` type wall (src/util/secret.h)
with a flow lint over identifier *names*: the type wall catches secrets that
live inside `Secret`, this lint catches raw buffers that are secrets by
naming convention but never got wrapped. A secret-named identifier reaching
a sink is a finding:

  secret-to-wire     a key/secret/stub-named identifier is an argument of
                     net::Writer::Blob/Str/Raw — secrets cross the wire only
                     as ciphertext, via an explicit reed::Declassify call.
  secret-log         a key/secret/stub-named identifier appears in a
                     printf/fprintf/puts family call or a cout/cerr/clog/LOG
                     statement — key material must never be logged.
  secret-compare     ==/!= or memcmp/bcmp on a key/secret/stub-named operand
                     — short-circuiting comparison of secrets is a timing
                     oracle. Use reed::SecureCompare or
                     Secret::ConstantTimeEquals.

A sink whose argument text contains `Declassify(` is sanctioned: Declassify
is the single greppable escape hatch, and its call sites are audited by hand
(`grep -rn "Declassify(" src/` must list exactly the two REED wire
crossings; see DESIGN.md §8).

Naming tokens are shared with crypto_lint.py (KEY_LOCAL_TOKENS/BENIGN_TOKENS)
plus `stub` and `mle`: in REED the stub is the secret share of a package and
MLE keys are the per-chunk secrets.

False positives that survive a manual audit go in the allowlist file
(default: tools/lint/taint_allowlist.txt) as `<relpath>:<rule>:<token>`
lines. The tree is expected to pass with an EMPTY allowlist.

Usage:
  taint_lint.py [--root REPO] [--allowlist FILE] [PATHS...]   # lint (default: src)
  taint_lint.py --self-test                                   # run fixture suite
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crypto_lint import (  # noqa: E402  (shared helpers, single source of truth)
    BENIGN_TOKENS,
    KEY_LOCAL_TOKENS,
    Finding,
    collect_files,
    load_allowlist,
    strip_comments_and_strings,
)

RULES = ("secret-to-wire", "secret-log", "secret-compare")

TAINT_TOKENS = KEY_LOCAL_TOKENS + r"|stub|mle"
TAINT_TOKEN_RE = re.compile(rf"({TAINT_TOKENS})", re.IGNORECASE)
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
DECLASSIFY_RE = re.compile(r"\bDeclassify\s*\(")

# Sinks. Argument text is taken to the end of the statement (or line) —
# coarse, but wire/log calls in this tree are single-statement.
WIRE_RE = re.compile(r"\b\w+\s*(?:\.|->)\s*(Blob|Str|Raw)\s*\(")
LOG_CALL_RE = re.compile(
    r"\b(printf|fprintf|snprintf|sprintf|vprintf|vfprintf|puts|fputs|"
    r"perror|LOG)\s*\(")
LOG_STREAM_RE = re.compile(r"\b(?:std::)?(cout|cerr|clog)\b")
MEMCMP_RE = re.compile(r"\b(?:std::)?(memcmp|bcmp)\s*\(")
EQ_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*(?:\(\))?)*)\s*(==|!=)\s*"
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*(?:\(\))?)*)"
)
SCALAR_TAIL_RE = re.compile(
    r"(?:\.|->)(size|empty|length|count|version|ByteLength)\(\)$"
)


def tainted_identifiers(text):
    """Secret-named identifiers in a stretch of argument text, excluding
    scalar projections like key.size()."""
    out = []
    for m in IDENT_RE.finditer(text):
        name = m.group(0)
        if not TAINT_TOKEN_RE.search(name) or BENIGN_TOKENS.search(name):
            continue
        tail = text[m.end():]
        if re.match(r"\s*(?:\.|->)\s*(size|empty|length|count|version)\s*\(",
                    tail):
            continue
        out.append(name)
    return out


def looks_tainted_operand(expr):
    if SCALAR_TAIL_RE.search(expr):
        return False
    leaf = expr.split(".")[-1].split("->")[-1]
    return bool(TAINT_TOKEN_RE.search(leaf)) and not BENIGN_TOKENS.search(leaf)


def statement_tail(lines, lineno):
    """Text from the sink call to the end of its statement (bounded)."""
    joined = lines[lineno - 1]
    i = lineno
    while ";" not in joined and i < len(lines) and i < lineno + 4:
        joined += " " + lines[i]
        i += 1
    return joined.split(";")[0]


def lint_text(path, raw):
    code = strip_comments_and_strings(raw)
    lines = code.split("\n")
    findings = []

    for lineno, line in enumerate(lines, start=1):
        m = WIRE_RE.search(line)
        if m:
            args = statement_tail(lines, lineno)[m.end():]
            if not DECLASSIFY_RE.search(args):
                for name in tainted_identifiers(args):
                    findings.append(Finding(
                        path, lineno, "secret-to-wire", name,
                        f"secret-named `{name}` reaches net::Writer::"
                        f"{m.group(1)} — wrap it in reed::Secret and cross "
                        "the wire via an audited reed::Declassify call"))

        if LOG_CALL_RE.search(line) or LOG_STREAM_RE.search(line):
            stmt = statement_tail(lines, lineno)
            if not DECLASSIFY_RE.search(stmt):
                for name in tainted_identifiers(stmt):
                    findings.append(Finding(
                        path, lineno, "secret-log", name,
                        f"secret-named `{name}` reaches a logging sink — "
                        "key material must never be printed"))

        m = MEMCMP_RE.search(line)
        if m:
            args = statement_tail(lines, lineno)[m.end():]
            for name in tainted_identifiers(args):
                findings.append(Finding(
                    path, lineno, "secret-compare", name,
                    f"{m.group(1)}() on secret-named `{name}` short-circuits "
                    "— use reed::SecureCompare or Secret::ConstantTimeEquals"))
                break  # one finding per memcmp call
        for m in EQ_RE.finditer(line):
            lhs, _, rhs = m.groups()
            if looks_tainted_operand(lhs) or looks_tainted_operand(rhs):
                tok = lhs if looks_tainted_operand(lhs) else rhs
                findings.append(Finding(
                    path, lineno, "secret-compare", tok,
                    f"==/!= on secret-named `{tok}` is not constant time — "
                    "use reed::SecureCompare or Secret::ConstantTimeEquals"))
    return findings


def run_lint(root, paths, allowlist_path):
    allow = load_allowlist(allowlist_path)
    reported = []
    for full in collect_files(root, paths):
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        for finding in lint_text(rel, raw):
            if finding.key() in allow:
                allow[finding.key()] += 1
            else:
                reported.append(finding)

    for finding in reported:
        print(finding)
    for k, hits in allow.items():
        if hits == 0:
            print(f"note: stale allowlist entry (no longer matches): {k}")
    if reported:
        print(f"taint_lint: {len(reported)} finding(s)")
        return 1
    used = sum(1 for hits in allow.values() if hits)
    print(f"taint_lint: clean ({used} allowlisted exception(s) in use)")
    return 0


# --------------------------- fixture self-test ---------------------------

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z\-]+)")


def run_self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures")
    failures = []
    files = collect_files(root, [os.path.join("tools", "lint", "fixtures")])
    if not files:
        print(f"taint_lint --self-test: no fixtures under {fixture_dir}")
        return 1
    for full in files:
        rel = os.path.relpath(full, root)
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        # Fixtures are shared with crypto_lint; only our own rule names count.
        expected = sorted(r for r in EXPECT_RE.findall(raw) if r in RULES)
        got = sorted(f.rule for f in lint_text(rel, raw))
        if expected != got:
            failures.append(f"{rel}: expected {expected or '[clean]'}, "
                            f"got {got or '[clean]'}")
    for f in failures:
        print("FAIL " + f)
    print(f"taint_lint --self-test: {len(files) - len(failures)}/{len(files)} "
          "fixtures pass")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint/"
                         "taint_allowlist.txt)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture files and check expectations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/directories relative to --root (default: src)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "taint_allowlist.txt")
    return run_lint(root, args.paths or ["src"], allowlist)


if __name__ == "__main__":
    sys.exit(main())
