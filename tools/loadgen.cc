// loadgen — drive a running reed_serverd with the massive-client workload
// engine (bench/loadgen_util.h): zipfian file popularity, configurable
// upload/download/rekey mix, paced or closed-loop, latency percentiles from
// the same obs histograms the benches gate on.
//
//   loadgen --target host:port [--clients 64] [--ops 100] [--rate 0]
//           [--files 32] [--chunks 4] [--chunk-bytes 4096]
//           [--upload-pct 30] [--rekey-pct 10] [--tenants 0] [--seed 42]
//           [--no-seed-corpus]
//
// --rate paces the aggregate fleet (ops/sec, open loop, latency measured
// from the scheduled start); 0 runs closed-loop saturation. --tenants N
// wraps requests in the tenant envelope (client c as tenant c%N) to
// exercise the server's per-tenant admission control — run the server with
// --tenant-rate to see throttling. --no-seed-corpus skips the setup upload
// when the corpus is already in place (repeat runs against one daemon).
#include <cstdio>

#include "bench/loadgen_util.h"
#include "tools/cli_util.h"

using namespace reed;
using namespace reed::bench;

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    auto [host, port] = cli::ParseHostPort(args.Require("target"));
    if (host != "127.0.0.1" && host != "localhost") {
      throw Error("loadgen: only loopback targets are supported");
    }

    LoadgenConfig cfg;
    cfg.clients = args.GetInt("clients", 64);
    cfg.ops_per_client = args.GetInt("ops", 100);
    cfg.target_rate = static_cast<double>(args.GetInt("rate", 0));
    cfg.files = args.GetInt("files", 32);
    cfg.chunks_per_file = args.GetInt("chunks", 4);
    cfg.chunk_bytes = args.GetInt("chunk-bytes", 4096);
    cfg.upload_pct = static_cast<unsigned>(args.GetInt("upload-pct", 30));
    cfg.rekey_pct = static_cast<unsigned>(args.GetInt("rekey-pct", 10));
    cfg.tenants = static_cast<std::uint32_t>(args.GetInt("tenants", 0));
    cfg.seed = args.GetInt("seed", 42);
    if (cfg.upload_pct + cfg.rekey_pct > 100) {
      throw Error("loadgen: --upload-pct + --rekey-pct must be <= 100");
    }

    if (!args.Has("no-seed-corpus")) {
      std::printf("loadgen: seeding %zu files x %zu chunks...\n", cfg.files,
                  cfg.chunks_per_file);
      SeedLoadgenCorpus(port, cfg);
    }
    std::printf("loadgen: %zu clients x %zu ops against %s:%u%s\n",
                cfg.clients, cfg.ops_per_client, host.c_str(), port,
                cfg.target_rate > 0 ? " (paced)" : " (closed loop)");
    LoadgenReport r = RunLoadgen(port, cfg);
    std::printf(
        "ops=%llu wall=%.2fs rate=%.0f ops/s\n"
        "latency p50=%llu us  p99=%llu us  p999=%llu us\n"
        "net_errors=%llu op_errors=%llu throttled=%llu\n",
        (unsigned long long)r.ops, r.wall_seconds, r.ops_per_sec,
        (unsigned long long)r.p50_us, (unsigned long long)r.p99_us,
        (unsigned long long)r.p999_us, (unsigned long long)r.net_errors,
        (unsigned long long)r.op_errors, (unsigned long long)r.throttled);
    return r.net_errors == 0 && r.op_errors == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 2;
  }
}
