// reed_keymanagerd — the REED key manager as a standalone TCP daemon.
//
//   reed_keymanagerd --port 7001 --state km.key --pubkey-out km.pub
//                    [--rsa-bits 1024] [--rate-limit N --burst B]
//
// On first start it generates the system-wide RSA key pair and persists it
// to --state; subsequent starts (or replicas for availability) reload the
// same pair. The public key is written to --pubkey-out for distribution to
// clients.
#include <csignal>
#include <cstdio>

#include "keymanager/key_manager.h"
#include "net/tcp_server.h"
#include "tools/cli_util.h"

using namespace reed;

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    std::uint16_t port =
        static_cast<std::uint16_t>(args.GetInt("port", 7001));
    std::string state_path = args.Get("state", "km.key");
    std::string pub_path = args.Get("pubkey-out", "km.pub");

    keymanager::KeyManager::Options opts;
    opts.rsa_bits = args.GetInt("rsa-bits", 1024);
    opts.rate_limit_per_sec = static_cast<double>(args.GetInt("rate-limit", 0));
    opts.rate_limit_burst = static_cast<double>(
        args.GetInt("burst", static_cast<std::uint64_t>(opts.rate_limit_per_sec)));

    rsa::RsaKeyPair keys;
    std::ifstream existing(state_path, std::ios::binary);
    if (existing.good()) {
      existing.close();
      keys = rsa::DeserializeKeyPair(Secret(cli::ReadFile(state_path)));
      std::printf("loaded key pair from %s (%zu-bit modulus)\n",
                  state_path.c_str(), keys.pub.n.BitLength());
    } else {
      std::printf("generating %zu-bit system key pair...\n", opts.rsa_bits);
      crypto::ChaChaRng rng(crypto::SecureRandom::Generate(32));
      keys = rsa::GenerateKeyPair(opts.rsa_bits, rng);
      // --state is this daemon's persistent secret store by design.
      cli::WriteFile(state_path,
                     Declassify(rsa::SerializeKeyPair(keys),
                                "system RSA key pair persisted to --state"));
    }
    cli::WriteFile(pub_path, rsa::SerializePublicKey(keys.pub));

    keymanager::KeyManager manager(std::move(keys), opts);
    net::TcpServer server(
        port, [&manager](ByteSpan req) { return manager.HandleRequest(req); });
    std::printf("reed_keymanagerd listening on 127.0.0.1:%u "
                "(public key: %s, rate limit: %s)\n",
                server.port(), pub_path.c_str(),
                opts.rate_limit_per_sec > 0 ? "on" : "off");
    std::fflush(stdout);
    server.Wait();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "reed_keymanagerd: %s\n", e.what());
    return 1;
  }
}
