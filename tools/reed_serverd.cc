// reed_serverd — a REED storage server (dedup + object stores) as a
// standalone TCP daemon. Run several for a data-server cluster plus one
// more as the key-store server.
//
//   reed_serverd --port 7101 --name data-0 [--seek-ms 0]
#include <cstdio>

#include "net/tcp_server.h"
#include "server/storage_server.h"
#include "tools/cli_util.h"

using namespace reed;

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    std::uint16_t port =
        static_cast<std::uint16_t>(args.GetInt("port", 7101));
    server::StorageServer::Options opts;
    opts.read_seek_seconds =
        static_cast<double>(args.GetInt("seek-ms", 0)) / 1000.0;
    server::StorageServer storage(args.Get("name", "server"), opts);

    net::TcpServer server(
        port, [&storage](ByteSpan req) { return storage.HandleRequest(req); });
    std::printf("reed_serverd '%s' listening on 127.0.0.1:%u\n",
                storage.name().c_str(), server.port());
    std::fflush(stdout);
    server.Wait();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "reed_serverd: %s\n", e.what());
    return 1;
  }
}
