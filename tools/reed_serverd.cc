// reed_serverd — a REED storage server (dedup + object stores) as a
// standalone TCP daemon. Run several for a data-server cluster plus one
// more as the key-store server.
//
//   reed_serverd --port 7101 --name data-0 [--seek-ms 0]
//       [--data-dir /var/reed/data-0 --fsync grouped --commit-window-us 500]
//       [--async --loops 2 --workers 4 --idle-timeout-ms 0
//        --tenant-rate 0 --tenant-burst 0]
//
// --data-dir makes the store durable (DESIGN.md §12): startup recovers from
// whatever the directory holds. --fsync picks the crash contract: none
// (process crashes only), grouped (machine crashes, batched fsync), always.
// --async serves with the epoll front end (DESIGN.md §13) instead of the
// thread-per-connection fallback; --tenant-rate enables per-tenant token-
// bucket admission (requests carrying the tenant envelope; 0 = off).
#include <chrono>
#include <cstdio>

#include "net/async_server.h"
#include "net/tcp_server.h"
#include "server/storage_server.h"
#include "tools/cli_util.h"

using namespace reed;

static store::FsyncPolicy ParseFsyncPolicy(const std::string& name) {
  if (name == "none") return store::FsyncPolicy::kNone;
  if (name == "grouped") return store::FsyncPolicy::kGrouped;
  if (name == "always") return store::FsyncPolicy::kAlways;
  throw Error("reed_serverd: unknown --fsync policy '" + name +
              "' (want none|grouped|always)");
}

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    std::uint16_t port =
        static_cast<std::uint16_t>(args.GetInt("port", 7101));
    server::StorageServer::Options opts;
    opts.read_seek_seconds =
        static_cast<double>(args.GetInt("seek-ms", 0)) / 1000.0;
    opts.data_dir = args.Get("data-dir", "");
    opts.durability.fsync_policy =
        ParseFsyncPolicy(args.Get("fsync", "grouped"));
    opts.durability.group_commit_window =
        std::chrono::microseconds(args.GetInt("commit-window-us", 500));
    server::StorageServer storage(args.Get("name", "server"), opts);
    if (!opts.data_dir.empty()) {
      auto rs = storage.RecoveryStats();
      std::printf(
          "reed_serverd recovered %llu records (%llu torn bytes dropped, "
          "%llu sealed segments)\n",
          static_cast<unsigned long long>(rs.replayed_records),
          static_cast<unsigned long long>(rs.discarded_tail),
          static_cast<unsigned long long>(rs.segments_sealed));
    }

    auto handler = [&storage](ByteSpan req) {
      return storage.HandleRequest(req);
    };
    if (args.Has("async")) {
      net::AsyncServer::Options net_opts;
      net_opts.loops = static_cast<std::size_t>(args.GetInt("loops", 2));
      net_opts.workers = static_cast<std::size_t>(args.GetInt("workers", 4));
      net_opts.idle_timeout =
          std::chrono::milliseconds(args.GetInt("idle-timeout-ms", 0));
      net_opts.tenant_rate_per_sec =
          static_cast<double>(args.GetInt("tenant-rate", 0));
      net_opts.tenant_burst =
          static_cast<double>(args.GetInt("tenant-burst", 0));
      net::AsyncServer server(port, handler, net_opts);
      std::printf(
          "reed_serverd '%s' listening on 127.0.0.1:%u (async, %zu loops)\n",
          storage.name().c_str(), server.port(), net_opts.loops);
      std::fflush(stdout);
      server.Wait();
    } else {
      net::TcpServer server(port, handler);
      std::printf("reed_serverd '%s' listening on 127.0.0.1:%u\n",
                  storage.name().c_str(), server.port());
      std::fflush(stdout);
      server.Wait();
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "reed_serverd: %s\n", e.what());
    return 1;
  }
}
