// reedctl — the REED command-line client.
//
// Identity management (the attribute authority / org admin side):
//   reedctl init-org --out org.reed
//       Runs CP-ABE Setup; writes the org file (public key + master key).
//   reedctl issue --org org.reed --user alice --out alice.id
//       Issues alice's private access key and derivation key pair.
//
// Data path (any user with an identity file):
//   reedctl upload   --identity alice.id --km 7001 --km-pub km.pub
//                    --servers 7101,7102 --key-server 7103
//                    --file path/to/data --name backup-1 [--share bob,carol]
//   reedctl download --identity alice.id ... --name backup-1 --out restored
//   reedctl rekey    --identity alice.id ... --name backup-1
//                    [--share carol] [--active]
//
// Observability:
//   reedctl stats    --servers 7101,7102 [--key-server 7103]
//       Fetches each server's metrics snapshot (kGetStats) and prints the
//       per-opcode RPC counts, latencies, and storage gauges.
//   upload/download also accept --stats to dump the client-side pipeline
//   stage timings (chunking, keygen, encode, store, ...) after the transfer.
//
// All flags accept "host:port" or bare "port" (localhost).
#include <cstdio>

#include "client/reed_client.h"
#include "keymanager/mle_key_client.h"
#include "net/rpc.h"
#include "net/stats_wire.h"
#include "obs/metrics.h"
#include "tools/cli_util.h"
#include "util/stopwatch.h"

using namespace reed;

namespace {

constexpr std::uint32_t kOrgMagic = 0x52454544;   // "REED"
constexpr std::uint32_t kIdMagic = 0x52454549;    // "REEI"

std::shared_ptr<const pairing::TypeAPairing> Pairing() {
  static auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  return pairing;
}

// --- org file: magic ‖ abe-pk ‖ abe-mk ---

int CmdInitOrg(const cli::Args& args) {
  std::string out = args.Require("out");
  abe::CpAbe cpabe(Pairing());
  crypto::ChaChaRng rng(crypto::SecureRandom::Generate(32));
  auto setup = cpabe.Setup(rng);

  net::Writer w;
  w.U32(kOrgMagic);
  w.Blob(cpabe.SerializePublicKey(setup.pk));
  // The org file IS the authority's secret store; writing it out is the
  // point of init-org (tools/ is outside the two in-tree wire crossings).
  w.Blob(Declassify(cpabe.SerializeMasterKey(setup.mk),
                    "ABE master key persisted to the local org file"));
  cli::WriteFile(out, w.bytes());
  std::printf("org created: %s (guard the master key inside!)\n", out.c_str());
  return 0;
}

struct OrgFile {
  abe::PublicKey pk;
  abe::MasterKey mk;
};

OrgFile LoadOrg(const abe::CpAbe& cpabe, const std::string& path) {
  Bytes blob = cli::ReadFile(path);
  net::Reader r(blob);
  if (r.U32() != kOrgMagic) throw Error(path + " is not an org file");
  OrgFile org;
  org.pk = cpabe.DeserializePublicKey(r.Blob());
  org.mk = cpabe.DeserializeMasterKey(Secret(r.Blob()));
  r.ExpectEnd();
  return org;
}

// --- identity file: magic ‖ user ‖ abe-pk ‖ abe-sk ‖ derivation keys ---

int CmdIssue(const cli::Args& args) {
  abe::CpAbe cpabe(Pairing());
  OrgFile org = LoadOrg(cpabe, args.Require("org"));
  std::string user = args.Require("user");
  std::string out = args.Require("out");

  crypto::ChaChaRng rng(crypto::SecureRandom::Generate(32));
  abe::PrivateKey sk = cpabe.KeyGen(org.pk, org.mk, {"user:" + user}, rng);
  rsa::RsaKeyPair derivation =
      rsa::GenerateKeyPair(args.GetInt("derivation-bits", 1024), rng);

  net::Writer w;
  w.U32(kIdMagic);
  w.Str(user);
  w.Blob(cpabe.SerializePublicKey(org.pk));
  // The identity file is the user's local secret-key bundle.
  w.Blob(Declassify(cpabe.SerializePrivateKey(sk),
                    "ABE access key persisted to the local identity file"));
  w.Blob(Declassify(rsa::SerializeKeyPair(derivation),
                    "derivation key pair persisted to the local identity file"));
  cli::WriteFile(out, w.bytes());
  std::printf("issued identity for '%s': %s\n", user.c_str(), out.c_str());
  return 0;
}

struct Identity {
  std::string user;
  abe::PublicKey pk;
  abe::PrivateKey sk;
  rsa::RsaKeyPair derivation;
};

Identity LoadIdentity(const abe::CpAbe& cpabe, const std::string& path) {
  Bytes blob = cli::ReadFile(path);
  net::Reader r(blob);
  if (r.U32() != kIdMagic) throw Error(path + " is not an identity file");
  Identity id;
  id.user = r.Str();
  id.pk = cpabe.DeserializePublicKey(r.Blob());
  id.sk = cpabe.DeserializePrivateKey(Secret(r.Blob()));
  id.derivation = rsa::DeserializeKeyPair(Secret(r.Blob()));
  r.ExpectEnd();
  return id;
}

// --- connected client construction ---

std::shared_ptr<net::RpcChannel> Connect(const std::string& spec) {
  auto [host, port] = cli::ParseHostPort(spec);
  return std::make_shared<net::TcpChannel>(net::TcpTransport::Connect(host, port));
}

std::unique_ptr<client::ReedClient> MakeClient(
    const cli::Args& args, const std::shared_ptr<const abe::CpAbe>& cpabe,
    Identity identity) {
  std::vector<std::shared_ptr<net::RpcChannel>> data_channels;
  for (const auto& spec : cli::SplitCommas(args.Require("servers"))) {
    data_channels.push_back(Connect(spec));
  }
  auto storage = std::make_shared<client::StorageClient>(
      std::move(data_channels), Connect(args.Require("key-server")));

  rsa::RsaPublicKey km_pub =
      rsa::DeserializePublicKey(cli::ReadFile(args.Require("km-pub")));
  std::vector<std::shared_ptr<net::RpcChannel>> km_replicas;
  for (const auto& spec : cli::SplitCommas(args.Require("km"))) {
    km_replicas.push_back(Connect(spec));
  }
  keymanager::MleKeyClient::Options kopts;
  kopts.batch_size = args.GetInt("batch", 256);
  auto keys = std::make_shared<keymanager::MleKeyClient>(
      identity.user, km_pub, std::move(km_replicas), kopts);

  client::ClientOptions copts;
  copts.scheme = args.Get("scheme", "enhanced") == "basic"
                     ? aont::Scheme::kBasic
                     : aont::Scheme::kEnhanced;
  copts.avg_chunk_size = args.GetInt("chunk-kb", 8) * 1024;
  copts.encryption_threads = args.GetInt("threads", 2);
  std::string salt = args.Get("salt", "");
  if (!salt.empty()) copts.file_id_salt = ToBytes(salt);

  return std::make_unique<client::ReedClient>(
      identity.user, copts, std::move(storage), std::move(keys), cpabe,
      identity.pk, std::move(identity.sk), std::move(identity.derivation));
}

// Dumps the in-process registry — the client side of the story (stage
// timings, OPRF cache behaviour). Server-side counts live behind `stats`.
void MaybePrintClientMetrics(const cli::Args& args) {
  if (!args.Has("stats")) return;
  std::printf("client-side metrics:\n%s",
              obs::RenderText(obs::Registry::Global().TakeSnapshot()).c_str());
}

int CmdStats(const cli::Args& args) {
  std::vector<std::string> specs = cli::SplitCommas(args.Get("servers", ""));
  std::string key_server = args.Get("key-server", "");
  if (!key_server.empty()) specs.push_back(key_server);
  if (specs.empty()) {
    throw Error("stats: pass --servers host:port[,host:port] and/or "
                "--key-server host:port");
  }
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(server::Opcode::kGetStats));
  Bytes frame = req.Take();
  for (const std::string& spec : specs) {
    Bytes resp = Connect(spec)->Call(frame);
    net::Reader r(resp);
    if (r.U8() != 0) {
      throw Error("stats: server " + spec + " answered error: " + r.Str());
    }
    obs::Snapshot snap = net::DecodeSnapshot(r);
    r.ExpectEnd();
    std::printf("=== stats: %s ===\n%s", spec.c_str(),
                obs::RenderText(snap).c_str());
  }
  return 0;
}

int CmdUpload(const cli::Args& args, const std::shared_ptr<const abe::CpAbe>& cpabe) {
  Identity id = LoadIdentity(*cpabe, args.Require("identity"));
  auto client = MakeClient(args, cpabe, id);
  Bytes data = cli::ReadFile(args.Require("file"));
  std::vector<std::string> share = cli::SplitCommas(args.Get("share", ""));

  Stopwatch sw;
  auto result = client->Upload(args.Require("name"), data, share);
  std::printf("uploaded %s: %.1f MB in %zu chunks (%zu new, %zu dedup), "
              "%.1f MB/s\n",
              args.Require("name").c_str(), ToMiB(data.size()),
              result.chunk_count, result.stored_chunks,
              result.duplicate_chunks,
              MbPerSec(data.size(), sw.ElapsedSeconds()));
  MaybePrintClientMetrics(args);
  return 0;
}

int CmdDownload(const cli::Args& args, const std::shared_ptr<const abe::CpAbe>& cpabe) {
  Identity id = LoadIdentity(*cpabe, args.Require("identity"));
  auto client = MakeClient(args, cpabe, id);
  Stopwatch sw;
  Bytes data = client->Download(args.Require("name"));
  cli::WriteFile(args.Require("out"), data);
  std::printf("downloaded %s: %.1f MB at %.1f MB/s -> %s\n",
              args.Require("name").c_str(), ToMiB(data.size()),
              MbPerSec(data.size(), sw.ElapsedSeconds()),
              args.Require("out").c_str());
  MaybePrintClientMetrics(args);
  return 0;
}

int CmdRekey(const cli::Args& args, const std::shared_ptr<const abe::CpAbe>& cpabe) {
  Identity id = LoadIdentity(*cpabe, args.Require("identity"));
  auto client = MakeClient(args, cpabe, id);
  auto mode = args.Has("active") ? client::RevocationMode::kActive
                                 : client::RevocationMode::kLazy;
  std::vector<std::string> share = cli::SplitCommas(args.Get("share", ""));
  Stopwatch sw;
  auto result = client->Rekey(args.Require("name"), share, mode);
  std::printf("rekeyed %s to version %llu (%s) in %.1f ms%s\n",
              args.Require("name").c_str(),
              static_cast<unsigned long long>(result.new_version),
              args.Has("active") ? "active" : "lazy", sw.ElapsedMillis(),
              result.stub_reencrypted ? " [stub file re-encrypted]" : "");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: reedctl <init-org|issue|upload|download|rekey|stats> "
               "[flags]\n  see the file header for full flag reference\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    if (args.positional().empty()) return Usage();
    const std::string& cmd = args.positional()[0];
    if (cmd == "init-org") return CmdInitOrg(args);
    if (cmd == "issue") return CmdIssue(args);
    if (cmd == "stats") return CmdStats(args);
    auto cpabe = std::make_shared<const abe::CpAbe>(Pairing());
    if (cmd == "upload") return CmdUpload(args, cpabe);
    if (cmd == "download") return CmdDownload(args, cpabe);
    if (cmd == "rekey") return CmdRekey(args, cpabe);
    return Usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "reedctl: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reedctl: %s\n", e.what());
    return 1;
  }
}
